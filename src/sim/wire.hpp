// Wire-level message format.
//
// Every protocol in the repository (Initiator-Accept, msgd-broadcast,
// ss-Byz-Agree bookkeeping, and the TPS'87 baseline) exchanges instances of
// one flat message. A single struct keeps the simulator protocol-agnostic,
// lets the Byzantine adversary forge arbitrary content, and makes
// "arbitrary spurious messages in flight" (the transient-fault model)
// trivially expressible.
//
// The fixed header (kind/sender/general/value/broadcaster/round) is what the
// protocols consume. Two carried extras make "production traffic"
// representable (see docs/wire-format.md for the byte-level layout):
//   auth     the authenticator tag (sim/auth.hpp) — stamped by the network's
//            send paths, checked at delivery; 0 under the null scheme.
//   payload  a variable-size application body (sim/payload.hpp) — a value
//            handle whose bytes live inline (≤ one cacheline) or in a
//            refcounted slot of the process-wide payload pool, so copying a
//            WireMessage never copies a pooled body.
#pragma once

#include <cstdint>
#include <string>

#include "sim/payload.hpp"
#include "util/types.hpp"

namespace ssbft {

enum class MsgKind : std::uint8_t {
  // --- Initiator-Accept primitive (paper Fig. 2) ---
  kInitiator,   // (Initiator, G, m)      — General's initiation
  kSupport,     // (support, G, m)
  kApprove,     // (approve, G, m)
  kReady,       // (ready, G, m)
  // --- msgd-broadcast primitive (paper Fig. 3); also reused, with
  //     time-driven semantics, by the TPS'87 baseline ---
  kBcastInit,       // (init, p, m, k)
  kBcastEcho,       // (echo, p, m, k)
  kBcastInitPrime,  // (init', p, m, k)
  kBcastEchoPrime,  // (echo', p, m, k)
  // --- TPS'87 baseline round-0 value dissemination ---
  kTpsGeneral,  // General's value broadcast in the synchronous baseline

  kNumKinds,
};

[[nodiscard]] const char* to_string(MsgKind kind);

/// One message on the wire. `sender` is authenticated by the network when it
/// is non-faulty (Def. 2.2): Network::send overwrites it with the true
/// origin and signs (`auth`) under the configured scheme. Only the
/// transient-fault injector may plant forged senders — and under AuthKind::
/// kHmac its plants carry tags the verifier rejects.
struct WireMessage {
  MsgKind kind = MsgKind::kInitiator;
  NodeId sender = kNoNode;
  GeneralId general{};     // the agreement instance this belongs to
  Value value = kBottom;   // m
  NodeId broadcaster = kNoNode;  // p in (p, m, k); unused by Initiator-Accept
  std::uint32_t round = 0;       // k in (p, m, k); unused by Initiator-Accept
  std::uint64_t auth = 0;        // authenticator tag (0 = untagged)
  /// Dissemination-layer relay marker (sim/topology.hpp): kRouteDirect for
  /// final copies, kRouteGossip/kRouteFederated for copies the receiver
  /// forwards at delivery. Network metadata, not message content: it is
  /// outside the authenticated field set (a relay forwards another node's
  /// signed bytes and cannot re-sign), never consulted by protocols, and
  /// always kRouteDirect under the flat topology.
  std::uint8_t route = 0;
  Payload payload;               // application body (may be empty)

  friend bool operator==(const WireMessage&, const WireMessage&) = default;
};

[[nodiscard]] std::string to_string(const WireMessage& m);

}  // namespace ssbft
