// Wire-level message format.
//
// Every protocol in the repository (Initiator-Accept, msgd-broadcast,
// ss-Byz-Agree bookkeeping, and the TPS'87 baseline) exchanges instances of
// one flat POD message. A single flat struct keeps the simulator protocol-
// agnostic, lets the Byzantine adversary forge arbitrary content, and makes
// "arbitrary spurious messages in flight" (the transient-fault model)
// trivially expressible.
#pragma once

#include <cstdint>
#include <string>

#include "util/types.hpp"

namespace ssbft {

enum class MsgKind : std::uint8_t {
  // --- Initiator-Accept primitive (paper Fig. 2) ---
  kInitiator,   // (Initiator, G, m)      — General's initiation
  kSupport,     // (support, G, m)
  kApprove,     // (approve, G, m)
  kReady,       // (ready, G, m)
  // --- msgd-broadcast primitive (paper Fig. 3); also reused, with
  //     time-driven semantics, by the TPS'87 baseline ---
  kBcastInit,       // (init, p, m, k)
  kBcastEcho,       // (echo, p, m, k)
  kBcastInitPrime,  // (init', p, m, k)
  kBcastEchoPrime,  // (echo', p, m, k)
  // --- TPS'87 baseline round-0 value dissemination ---
  kTpsGeneral,  // General's value broadcast in the synchronous baseline

  kNumKinds,
};

[[nodiscard]] const char* to_string(MsgKind kind);

/// One message on the wire. `sender` is authenticated by the network when it
/// is non-faulty (Def. 2.2): Network::send overwrites it with the true
/// origin. Only the transient-fault injector may plant forged senders.
struct WireMessage {
  MsgKind kind = MsgKind::kInitiator;
  NodeId sender = kNoNode;
  GeneralId general{};     // the agreement instance this belongs to
  Value value = kBottom;   // m
  NodeId broadcaster = kNoNode;  // p in (p, m, k); unused by Initiator-Accept
  std::uint32_t round = 0;       // k in (p, m, k); unused by Initiator-Accept

  friend bool operator==(const WireMessage&, const WireMessage&) = default;
};

[[nodiscard]] std::string to_string(const WireMessage& m);

}  // namespace ssbft
