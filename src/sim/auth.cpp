#include "sim/auth.hpp"

namespace ssbft {

const char* to_string(AuthKind kind) {
  switch (kind) {
    case AuthKind::kNull: return "null";
    case AuthKind::kHmac: return "hmac";
  }
  return "?";
}

namespace {

std::uint64_t mix(std::uint64_t x) {
  // splitmix64 finalizer: cheap, well-distributed, deterministic.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t Authenticator::tag(const WireMessage& msg) const {
  if (kind_ == AuthKind::kNull) return 0;
  // Per-sender key: forging another sender's tag requires that sender's
  // key, which only the network's signing path holds.
  std::uint64_t h = mix(mix(key_seed_) ^ msg.sender);
  h = mix(h ^ std::uint64_t(msg.kind));
  h = mix(h ^ msg.sender);
  h = mix(h ^ msg.general.node);
  h = mix(h ^ msg.value);
  h = mix(h ^ msg.broadcaster);
  h = mix(h ^ msg.round);
  h = mix(h ^ msg.payload.checksum() ^ msg.payload.size());
  return h == 0 ? 1 : h;  // reserve 0 for "untagged"
}

void Authenticator::sign(WireMessage& msg) const {
  if (kind_ == AuthKind::kNull) return;
  msg.auth = tag(msg);
}

bool Authenticator::verify(const WireMessage& msg) const {
  if (kind_ == AuthKind::kNull) return true;
  return msg.auth == tag(msg);
}

}  // namespace ssbft
