// Pluggable message authentication (paper Def. 2.2).
//
// The model is authenticated-Byzantine: the adversary may delay, drop,
// replay, and garble traffic, but can only forge what the authentication
// scheme permits. Two schemes:
//
//   kNull  the legacy model — no tags, everything verifies. Sender
//          authenticity still holds for non-faulty traffic (the Network
//          overwrites msg.sender at send), but transient garbage and
//          chaos-corrupted copies are delivered as-is.
//   kHmac  a cheap deterministic HMAC-style tag: send paths sign at origin
//          with a per-sender key derived from (key_seed, sender), delivery
//          verifies, and a failed check is counted/traced and the message
//          discarded — never handed to the behavior. The fault injector and
//          the chaos corrupter know no keys, so the garbage they mint is
//          rejected; a Byzantine NODE still signs validly as itself (it owns
//          its key — authentication bounds impersonation, not malice).
//
// The tag is a pure function of the signed content (header fields + payload
// checksum + per-sender key), so verification is engine- and thread-
// independent: serial, sharded, and duty-cycle runs reject the exact same
// deliveries and digests stay bit-identical.
#pragma once

#include <cstdint>

#include "sim/wire.hpp"

namespace ssbft {

enum class AuthKind : std::uint8_t {
  kNull,
  kHmac,
};

/// Number of AuthKind enumerators (test_enums checks that to_string covers
/// exactly this many).
inline constexpr std::uint32_t kAuthKindCount = 2;

[[nodiscard]] const char* to_string(AuthKind kind);

class Authenticator {
 public:
  /// Default: the null scheme (everything verifies).
  Authenticator() = default;
  Authenticator(AuthKind kind, std::uint64_t key_seed)
      : kind_(kind), key_seed_(key_seed) {}

  [[nodiscard]] AuthKind kind() const { return kind_; }

  /// The tag the configured scheme expects on `msg` (sender must already be
  /// set — the tag binds it). Never 0 under kHmac, so an untagged forgery
  /// (auth == 0) can never verify by accident.
  [[nodiscard]] std::uint64_t tag(const WireMessage& msg) const;

  /// Stamp msg.auth at origin. kNull leaves it 0.
  void sign(WireMessage& msg) const;

  /// Delivery-side check. kNull always passes.
  [[nodiscard]] bool verify(const WireMessage& msg) const;

 private:
  AuthKind kind_ = AuthKind::kNull;
  std::uint64_t key_seed_ = 0;
};

}  // namespace ssbft
