#include "sim/topology.hpp"

namespace ssbft {

const char* to_string(Topology topology) {
  switch (topology) {
    case Topology::kFlat: return "flat";
    case Topology::kFederated: return "federated";
    case Topology::kGossip: return "gossip";
  }
  return "?";
}

}  // namespace ssbft
