#include "sim/handoff_world.hpp"

#include <utility>

#include "util/assert.hpp"

namespace ssbft {

HandoffWorld::HandoffWorld(WorldConfig config, RealTime handoff_at)
    : WorldBase(config), handoff_at_(handoff_at) {
  SSBFT_EXPECTS(handoff_at_ > RealTime::zero());
  // The suffix engine must actually shard, or the wrapper is pointless —
  // the Cluster builds a plain serial World otherwise.
  SSBFT_EXPECTS(ShardWorld::effective_shards(config_) > 1);
  serial_ = std::make_unique<World>(config_);
  // Before ANY traffic: in-flight messages must be exportable at the cut.
  serial_->enable_handoff_export();
}

HandoffWorld::~HandoffWorld() = default;

WorldBase& HandoffWorld::active() {
  return sharded_ ? static_cast<WorldBase&>(*sharded_)
                  : static_cast<WorldBase&>(*serial_);
}

const WorldBase& HandoffWorld::active() const {
  return sharded_ ? static_cast<const WorldBase&>(*sharded_)
                  : static_cast<const WorldBase&>(*serial_);
}

void HandoffWorld::set_behavior(NodeId id,
                                std::unique_ptr<NodeBehavior> behavior) {
  active().set_behavior(id, std::move(behavior));
}

NodeBehavior* HandoffWorld::behavior(NodeId id) {
  return active().behavior(id);
}

void HandoffWorld::start() { active().start(); }

void HandoffWorld::migrate() {
  SSBFT_ASSERT(serial_ && !sharded_);
  // Drain the prefix: every event strictly before the cut dispatches on the
  // serial engine (chaos sends, being before ι0, all happen here). What
  // remains in flight fires at or after the cut.
  serial_->run_before(handoff_at_);
  WorldMigration migration = serial_->export_migration();
  migration.actions.reserve(actions_.size());
  for (auto& [seq, action] : actions_) {
    migration.actions.push_back(std::move(action));
  }
  actions_.clear();
  sharded_ = std::make_unique<ShardWorld>(config_, std::move(migration));
  serial_.reset();
}

void HandoffWorld::run_until(RealTime t) {
  if (serial_ && t >= handoff_at_) migrate();
  active().run_until(t);
}

void HandoffWorld::run_to_quiescence(RealTime hard_deadline) {
  if (serial_ && hard_deadline >= handoff_at_) migrate();
  active().run_to_quiescence(hard_deadline);
}

RealTime HandoffWorld::now() const { return active().now(); }

LocalTime HandoffWorld::local_now(NodeId id) const {
  return active().local_now(id);
}

RealTime HandoffWorld::real_at(NodeId id, LocalTime tau) const {
  return active().real_at(id, tau);
}

DriftingClock& HandoffWorld::clock(NodeId id) { return active().clock(id); }

Rng& HandoffWorld::rng() { return active().rng(); }

Logger& HandoffWorld::log() { return active().log(); }

void HandoffWorld::scramble_node(NodeId id) { active().scramble_node(id); }

void HandoffWorld::schedule(RealTime when, NodeId target,
                            std::function<void()> action) {
  SSBFT_EXPECTS(target < config_.n);
  if (sharded_) {
    // No further migration: forward (the suffix engine mints the continuing
    // world-channel seq itself).
    sharded_->schedule(when, target, std::move(action));
    return;
  }
  // Prefix phase: the serial queue mints the next world-channel seq for the
  // wrapper event; register the action under that seq so it can follow the
  // migration if still pending at the cut. The wrapper adds no draws, no
  // extra events, and the identical key — invisible to an all-serial run.
  const std::uint64_t seq = serial_->queue().global_seq();
  auto [it, inserted] = actions_.emplace(
      seq, WorldMigration::PendingAction{when, EventKey{kGlobalCreator, seq},
                                         target, std::move(action)});
  SSBFT_ASSERT(inserted);
  serial_->schedule(when, target, [this, seq] {
    auto node = actions_.extract(seq);
    SSBFT_ASSERT(!node.empty());
    node.mapped().action();
  });
}

void HandoffWorld::inject_raw(NodeId dest, WireMessage msg, Duration delay) {
  active().inject_raw(dest, msg, delay);
}

NetworkStats HandoffWorld::net_stats() const { return active().net_stats(); }

std::uint64_t HandoffWorld::dispatched() const { return active().dispatched(); }

Network& HandoffWorld::network() {
  SSBFT_EXPECTS(serial_ != nullptr);  // post-handoff: sharded-only surface
  return serial_->network();
}

EventQueue& HandoffWorld::queue() {
  SSBFT_EXPECTS(serial_ != nullptr);  // post-handoff: sharded-only surface
  return serial_->queue();
}

}  // namespace ssbft
