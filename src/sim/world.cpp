#include "sim/world.hpp"

#include <algorithm>
#include <utility>

#include "harness/trace.hpp"
#include "util/assert.hpp"

namespace ssbft {

const char* to_string(ShardSched sched) {
  // Exhaustive: no default, so -Wswitch flags a new enumerator here; the
  // kShardSchedCount unit test catches it at runtime too.
  switch (sched) {
    case ShardSched::kStatic: return "static";
    case ShardSched::kBalance: return "balance";
    case ShardSched::kSteal: return "steal";
    case ShardSched::kLax: return "lax";
  }
  return "?";
}

void WorldConfig::resolve_delay_models() {
  if (has_delay_models) return;
  // Default: typical delay well below the bound δ with an exponential
  // tail capped at δ — the regime the paper's message-driven design
  // targets ("actual delivery time... may be significantly faster than
  // the worst case"). Benches that stress delays at the bound override
  // this explicitly.
  link_delay = DelayModel::exp_truncated(delta / 5, delta);
  proc_delay = DelayModel::uniform(Duration::zero(), pi);
  has_delay_models = true;
}

DriftingClock derive_node_clock(const WorldConfig& config, NodeId id) {
  Rng rng = rng_stream(config.seed, RngDomain::kNodeClock, id);
  // Arbitrary offsets, drift within ±ρ: the post-transient reality.
  const double rate = 1.0 + config.rho * (2.0 * rng.next_double() - 1.0);
  const Duration offset{rng.next_in(0, config.max_clock_offset.ns())};
  return DriftingClock{rate, offset};
}

WorldBase::WorldBase(const WorldConfig& config) : config_(config) {
  SSBFT_EXPECTS(config_.n > 0);
  config_.resolve_delay_models();
  SSBFT_EXPECTS(config_.link_delay.max <= config_.delta);
  SSBFT_EXPECTS(config_.proc_delay.max <= config_.pi);
}

WorldBase::~WorldBase() = default;

// Per-node implementation of the NodeContext interface. A thin forwarding
// shim: all state lives in the World.
class World::ContextImpl final : public NodeContext {
 public:
  ContextImpl(World& world, NodeId id) : world_(world), id_(id) {}

  [[nodiscard]] NodeId id() const override { return id_; }
  [[nodiscard]] std::uint32_t n() const override { return world_.n(); }

  [[nodiscard]] LocalTime local_now() const override {
    return world_.local_now(id_);
  }

  void send(NodeId dest, WireMessage msg) override {
    world_.network_->send(id_, dest, msg);
  }

  void send_all(WireMessage msg) override {
    world_.network_->send_all(id_, msg);
  }

  TimerHandle set_timer(LocalTime when, std::uint64_t cookie) override {
    const RealTime fire =
        std::max(world_.real_at(id_, when), world_.now());
    World& world = world_;
    auto& slot = world_.nodes_[id_];
    // Odd-channel key: timers and network sends by the same node must not
    // collide in the (creator, seq) space (EventKey doc). Both timer
    // backends mint the key here, so their dispatch orders coincide.
    const EventKey key{id_, slot.timer_seq++ * 2 + 1};
    if (world.config().timer_wheel) {
      // Wheel path: the record waits in O(1) slots; pump_timers hands it
      // to the heap just before the engine reaches its window.
      return world.timers_.schedule(fire, key, id_, cookie);
    }
    // Legacy path: park the fire event in the heap now. The record exists
    // to give cancel_timer the same suppress-at-claim semantics — and to
    // carry (when, key) across an engine migration, where the fire event
    // dies with this queue and must re-materialize under the same key.
    const TimerHandle handle =
        world.timers_.arm_external(fire, key, id_, cookie);
    world.queue_.schedule(fire, key,
                          [&world, handle] { world.fire_timer(handle); });
    return handle;
  }

  TimerHandle set_timer_after(Duration local_delay,
                              std::uint64_t cookie) override {
    return set_timer(local_now() + local_delay, cookie);
  }

  bool cancel_timer(TimerHandle handle) override {
    return world_.timers_.cancel(handle);
  }

  Rng& rng() override { return world_.nodes_[id_].rng; }
  Logger& log() override { return world_.logger_; }

 private:
  World& world_;
  NodeId id_;
};

World::World(WorldConfig config)
    : WorldBase(config), rng_(config_.seed), logger_(config_.log_level) {
  network_ = std::make_unique<Network>(
      queue_, config_.n, config_.link_delay, config_.proc_delay, config_.chaos,
      config_.seed,
      [this](NodeId dest, const WireMessage& msg) { deliver(dest, msg); },
      config_.auth);
  network_->set_topology(config_.topology.resolved(config_.n));

  nodes_.resize(config_.n);
  for (NodeId id = 0; id < config_.n; ++id) {
    auto& slot = nodes_[id];
    slot.clock = derive_node_clock(config_, id);
    slot.context = std::make_unique<ContextImpl>(*this, id);
    slot.rng = derive_node_rng(config_.seed, id);
  }
}

World::World(WorldConfig config, WorldMigration&& migration,
             bool handoff_export)
    : World(std::move(config)) {
  SSBFT_EXPECTS(migration.nodes.size() == nodes_.size());
  // Counter/clock positions first: the queue must be pristine, and delivery
  // tracking must be live BEFORE any delivery re-materializes (and before
  // the adopted wire counters would trip its before-traffic precondition).
  queue_.adopt(migration.now, migration.world_seq, migration.dispatched);
  if (handoff_export) network_->enable_handoff_export();
  network_->adopt_world_counters(migration.forged_seq, migration.stats);
  rng_ = migration.world_rng;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    WorldMigration::NodeState& in = migration.nodes[id];
    NodeSlot& slot = nodes_[id];
    slot.clock = in.clock;
    slot.rng = in.rng;
    slot.timer_seq = in.timer_seq;
    slot.started = in.started;
    slot.behavior = std::move(in.behavior);
    network_->adopt_node_streams(id, in.link_rng, in.send_seq);
    if (slot.behavior) slot.behavior->rebind(*slot.context);
  }
  // Serial adoption owns the whole snapshot: accept every record, and take
  // the whole allocation space — partition (0, 1).
  timers_.import_records(migration.timers, migration.timer_generations,
                         migration.now, [](NodeId) { return true; });
  for (const Network::PendingDelivery& pending : migration.deliveries) {
    network_->adopt_delivery(pending);
  }
  for (WorldMigration::PendingAction& action : migration.actions) {
    queue_.schedule(action.when, action.key, std::move(action.action));
  }
  // Behaviors carry their started flags over — adoption never re-runs
  // on_start (the cut is an engine-internal instant, not a deployment).
  started_ = true;
}

World::~World() = default;

void World::set_behavior(NodeId id, std::unique_ptr<NodeBehavior> behavior) {
  SSBFT_EXPECTS(id < config_.n);
  auto& slot = nodes_[id];
  slot.behavior = std::move(behavior);
  slot.started = false;
  if (started_ && slot.behavior) {
    slot.behavior->on_start(*slot.context);
    slot.started = true;
  }
}

NodeBehavior* World::behavior(NodeId id) {
  SSBFT_EXPECTS(id < config_.n);
  return nodes_[id].behavior.get();
}

void World::start() {
  started_ = true;
  const trace::Scope traced(config_.tracer, queue_.now_ptr());
  for (auto& slot : nodes_) {
    if (slot.behavior && !slot.started) {
      slot.behavior->on_start(*slot.context);
      slot.started = true;
    }
  }
}

void World::pump_timers(RealTime bound) {
  timers_.advance(bound, due_batch_);
  for (const TimerWheel::Due& due : due_batch_) {
    World* world = this;
    queue_.schedule(due.when, due.key,
                    [world, handle = due.handle] { world->fire_timer(handle); });
  }
}

void World::fire_timer(TimerHandle handle) {
  NodeId node;
  std::uint64_t cookie;
  if (!timers_.claim(handle, node, cookie)) {
    ++suppressed_timers_;  // cancelled after hand-over: a no-op pop
    return;
  }
  auto& fired = nodes_[node];
  if (fired.behavior) fired.behavior->on_timer(*fired.context, cookie);
}

void World::run_until(RealTime t) {
  SSBFT_EXPECTS(!exported_);
  const trace::Scope traced(config_.tracer, queue_.now_ptr());
  logger_.set_now(queue_.now());
  while (true) {
    // Batched hand-over (timer_pump_bound): due wheel timers move to the
    // heap just before the dispatch that could need them; the heap's
    // (when, creator, seq) order then dispatches exactly as the legacy
    // all-in-the-heap path would.
    const RealTime bound = timer_pump_bound(queue_, timers_, t);
    if (bound != RealTime::max()) {
      pump_timers(bound);
      continue;
    }
    if (queue_.empty() || queue_.next_time() > t) break;
    queue_.run_one();
    logger_.set_now(queue_.now());
  }
  queue_.run_until(t);
}

void World::run_before(RealTime t) {
  SSBFT_EXPECTS(!exported_);
  const trace::Scope traced(config_.tracer, queue_.now_ptr());
  logger_.set_now(queue_.now());
  while (true) {
    const RealTime bound = timer_pump_bound(queue_, timers_, t);
    if (bound != RealTime::max()) {
      pump_timers(bound);
      continue;
    }
    if (queue_.empty() || queue_.next_time() >= t) break;
    queue_.run_one();
    logger_.set_now(queue_.now());
  }
}

WorldMigration World::export_migration() {
  // One-shot: a second export, or an export after further activity (the
  // run_*/schedule guards plus the Network's sealed tracking slab), could
  // only produce an inconsistent snapshot — refuse loudly instead.
  SSBFT_EXPECTS(!exported_);
  exported_ = true;
  network_->mark_exported();
  WorldMigration m;
  m.now = queue_.now();
  m.dispatched = dispatched();
  m.world_seq = queue_.global_seq();
  m.forged_seq = network_->forged_seq();
  m.stats = network_->stats();
  m.world_rng = rng_;
  m.deliveries = network_->pending_deliveries();
  timers_.export_records(m.timers, m.timer_generations);
  m.nodes.resize(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    NodeSlot& slot = nodes_[id];
    WorldMigration::NodeState& out = m.nodes[id];
    out.clock = slot.clock;
    out.behavior = std::move(slot.behavior);
    out.rng = slot.rng;
    out.link_rng = network_->link_rng(id);
    out.timer_seq = slot.timer_seq;
    out.send_seq = network_->send_seq(id);
    out.started = slot.started;
  }
  return m;
}

void World::run_to_quiescence(RealTime hard_deadline) {
  SSBFT_EXPECTS(!exported_);
  const trace::Scope traced(config_.tracer, queue_.now_ptr());
  while (true) {
    const RealTime bound = timer_pump_bound(queue_, timers_, hard_deadline);
    if (bound != RealTime::max()) {
      pump_timers(bound);
      continue;
    }
    if (queue_.empty() || queue_.next_time() > hard_deadline) break;
    queue_.run_one();
    logger_.set_now(queue_.now());
  }
}

LocalTime World::local_now(NodeId id) const {
  SSBFT_EXPECTS(id < config_.n);
  return nodes_[id].clock.local_at(queue_.now());
}

RealTime World::real_at(NodeId id, LocalTime tau) const {
  SSBFT_EXPECTS(id < config_.n);
  return nodes_[id].clock.real_at(tau);
}

DriftingClock& World::clock(NodeId id) {
  SSBFT_EXPECTS(id < config_.n);
  return nodes_[id].clock;
}

void World::scramble_node(NodeId id) {
  SSBFT_EXPECTS(id < config_.n);
  auto& slot = nodes_[id];
  if (slot.behavior) slot.behavior->scramble(*slot.context, slot.rng);
}

void World::schedule(RealTime when, NodeId target,
                     std::function<void()> action) {
  SSBFT_EXPECTS(target < config_.n);
  SSBFT_EXPECTS(!exported_);
  queue_.schedule(when, std::move(action));  // world-level creator key
}

void World::inject_raw(NodeId dest, WireMessage msg, Duration delay) {
  network_->inject_raw(dest, msg, delay);
}

void World::deliver(NodeId dest, const WireMessage& msg) {
  auto& slot = nodes_[dest];
  if (slot.behavior) slot.behavior->on_message(*slot.context, msg);
}

}  // namespace ssbft
