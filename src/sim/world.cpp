#include "sim/world.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace ssbft {

// Per-node implementation of the NodeContext interface. A thin forwarding
// shim: all state lives in the World.
class World::ContextImpl final : public NodeContext {
 public:
  ContextImpl(World& world, NodeId id) : world_(world), id_(id) {}

  [[nodiscard]] NodeId id() const override { return id_; }
  [[nodiscard]] std::uint32_t n() const override { return world_.n(); }

  [[nodiscard]] LocalTime local_now() const override {
    return world_.local_now(id_);
  }

  void send(NodeId dest, WireMessage msg) override {
    world_.network_->send(id_, dest, msg);
  }

  void send_all(WireMessage msg) override {
    world_.network_->send_all(id_, msg);
  }

  void set_timer(LocalTime when, std::uint64_t cookie) override {
    const RealTime fire =
        std::max(world_.real_at(id_, when), world_.now());
    const NodeId id = id_;
    World& world = world_;
    world_.queue_.schedule(fire, [&world, id, cookie] {
      auto& slot = world.nodes_[id];
      if (slot.behavior) slot.behavior->on_timer(*slot.context, cookie);
    });
  }

  void set_timer_after(Duration local_delay, std::uint64_t cookie) override {
    set_timer(local_now() + local_delay, cookie);
  }

  Rng& rng() override { return world_.nodes_[id_].rng; }
  Logger& log() override { return world_.logger_; }

 private:
  World& world_;
  NodeId id_;
};

World::World(WorldConfig config)
    : config_(config), rng_(config.seed), logger_(config.log_level) {
  SSBFT_EXPECTS(config_.n > 0);

  if (!config_.has_delay_models) {
    // Default: typical delay well below the bound δ with an exponential
    // tail capped at δ — the regime the paper's message-driven design
    // targets ("actual delivery time... may be significantly faster than
    // the worst case"). Benches that stress delays at the bound override
    // this explicitly.
    config_.link_delay =
        DelayModel::exp_truncated(config_.delta / 5, config_.delta);
    config_.proc_delay = DelayModel::uniform(Duration::zero(), config_.pi);
  }
  SSBFT_EXPECTS(config_.link_delay.max <= config_.delta);
  SSBFT_EXPECTS(config_.proc_delay.max <= config_.pi);

  network_ = std::make_unique<Network>(
      queue_, config_.n, config_.link_delay, config_.proc_delay, config_.chaos,
      rng_.split(),
      [this](NodeId dest, const WireMessage& msg) { deliver(dest, msg); });

  nodes_.resize(config_.n);
  for (NodeId id = 0; id < config_.n; ++id) {
    auto& slot = nodes_[id];
    // Arbitrary offsets, drift within ±ρ: the post-transient reality.
    const double rate =
        1.0 + config_.rho * (2.0 * rng_.next_double() - 1.0);
    const Duration offset{rng_.next_in(0, config_.max_clock_offset.ns())};
    slot.clock = DriftingClock{rate, offset};
    slot.context = std::make_unique<ContextImpl>(*this, id);
    slot.rng = rng_.split();
  }
}

World::~World() = default;

void World::set_behavior(NodeId id, std::unique_ptr<NodeBehavior> behavior) {
  SSBFT_EXPECTS(id < config_.n);
  auto& slot = nodes_[id];
  slot.behavior = std::move(behavior);
  slot.started = false;
  if (started_ && slot.behavior) {
    slot.behavior->on_start(*slot.context);
    slot.started = true;
  }
}

NodeBehavior* World::behavior(NodeId id) {
  SSBFT_EXPECTS(id < config_.n);
  return nodes_[id].behavior.get();
}

void World::start() {
  started_ = true;
  for (auto& slot : nodes_) {
    if (slot.behavior && !slot.started) {
      slot.behavior->on_start(*slot.context);
      slot.started = true;
    }
  }
}

void World::run_until(RealTime t) {
  logger_.set_now(queue_.now());
  while (!queue_.empty() && queue_.next_time() <= t) {
    queue_.run_one();
    logger_.set_now(queue_.now());
  }
  queue_.run_until(t);
}

void World::run_to_quiescence(RealTime hard_deadline) {
  while (!queue_.empty() && queue_.next_time() <= hard_deadline) {
    queue_.run_one();
    logger_.set_now(queue_.now());
  }
}

LocalTime World::local_now(NodeId id) const {
  SSBFT_EXPECTS(id < config_.n);
  return nodes_[id].clock.local_at(queue_.now());
}

RealTime World::real_at(NodeId id, LocalTime tau) const {
  SSBFT_EXPECTS(id < config_.n);
  return nodes_[id].clock.real_at(tau);
}

DriftingClock& World::clock(NodeId id) {
  SSBFT_EXPECTS(id < config_.n);
  return nodes_[id].clock;
}

void World::scramble_node(NodeId id) {
  SSBFT_EXPECTS(id < config_.n);
  auto& slot = nodes_[id];
  if (slot.behavior) slot.behavior->scramble(*slot.context, slot.rng);
}

void World::deliver(NodeId dest, const WireMessage& msg) {
  auto& slot = nodes_[dest];
  if (slot.behavior) slot.behavior->on_message(*slot.context, msg);
}

}  // namespace ssbft
