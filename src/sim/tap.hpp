// Network tap: an observer stream of every wire-level event, for debugging,
// test assertions, and offline trace analysis. The tap sees events the
// moment the network processes them (omnisciently, in real time) — protocol
// code never does.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/wire.hpp"
#include "util/time.hpp"

namespace ssbft {

struct TapEvent {
  enum class Kind : std::uint8_t {
    kSent,       // admitted to the network by a node
    kDelivered,  // handed to the destination (post processing delay)
    kDropped,    // lost during a network-faulty period
    kForged,     // injected by the fault injector (sender unauthenticated)
    kRejected,   // authenticator check failed at delivery; discarded
  };

  Kind kind = Kind::kSent;
  RealTime at{};
  NodeId from = kNoNode;  // kNoNode for forged injections
  NodeId to = kNoNode;
  WireMessage msg{};
};

[[nodiscard]] const char* to_string(TapEvent::Kind kind);
[[nodiscard]] std::string to_string(const TapEvent& event);

using TapFn = std::function<void(const TapEvent&)>;

/// Convenience recorder with filtering and bounded memory.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1 << 16)
      : capacity_(capacity) {}

  /// The callback to hand to Network::set_tap.
  [[nodiscard]] TapFn tap() {
    return [this](const TapEvent& event) { record(event); };
  }

  void record(const TapEvent& event);

  [[nodiscard]] const std::vector<TapEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t dropped_records() const { return dropped_; }
  void clear();

  /// Events matching a predicate (e.g. one conversation).
  [[nodiscard]] std::vector<TapEvent> filter(
      const std::function<bool(const TapEvent&)>& pred) const;

  /// Count of events with the given tap kind and message kind.
  [[nodiscard]] std::size_t count(TapEvent::Kind kind, MsgKind msg_kind) const;

 private:
  std::size_t capacity_;
  std::vector<TapEvent> events_;
  std::size_t dropped_ = 0;
};

}  // namespace ssbft
