// The World: n nodes, their clocks, the network, and the event loop.
//
// The World is the only component that sees both real time and every node's
// local time; protocol behaviors run entirely behind the NodeContext
// interface. Tests and the harness use the World's omniscient accessors to
// check the paper's real-time bounds (skews, convergence times).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace ssbft {

struct WorldConfig {
  std::uint32_t n = 4;

  /// Network bound δ and processing bound π (real time). The model constant
  /// d = (δ+π)(1+ρ) is derived; see d_bound().
  Duration delta = milliseconds(1);
  Duration pi = microseconds(50);
  /// Clock drift bound ρ for non-faulty nodes.
  double rho = 1e-4;

  /// Actual delay distributions; defaults (set at construction if kind-less)
  /// are uniform over [δ/5, δ] and [0, π].
  DelayModel link_delay{};
  DelayModel proc_delay{};
  bool has_delay_models = false;

  /// Spread of initial clock offsets (arbitrary after a transient fault).
  Duration max_clock_offset = seconds(1);

  ChaosConfig chaos{};
  std::uint64_t seed = 1;
  LogLevel log_level = LogLevel::kWarn;

  /// d = (δ+π)(1+ρ), the paper's bound on send+process as measured on any
  /// non-faulty local timer.
  [[nodiscard]] Duration d_bound() const {
    const double ns = double((delta + pi).ns()) * (1.0 + rho);
    return Duration{static_cast<std::int64_t>(ns) + 1};
  }
};

class World {
 public:
  explicit World(WorldConfig config);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] std::uint32_t n() const { return config_.n; }
  [[nodiscard]] const WorldConfig& config() const { return config_; }

  /// Install the protocol/adversary running on `id`. May be called again
  /// later (Byzantine turnover, node recovery); the new behavior's on_start
  /// runs at the current instant if the world has started.
  void set_behavior(NodeId id, std::unique_ptr<NodeBehavior> behavior);
  [[nodiscard]] NodeBehavior* behavior(NodeId id);

  /// Calls on_start on every installed behavior. Idempotent per behavior.
  void start();

  void run_until(RealTime t);
  void run_for(Duration d) { run_until(now() + d); }
  /// Drain every pending event (useful for quiescence tests).
  void run_to_quiescence(RealTime hard_deadline);

  [[nodiscard]] RealTime now() const { return queue_.now(); }
  [[nodiscard]] LocalTime local_now(NodeId id) const;
  [[nodiscard]] RealTime real_at(NodeId id, LocalTime tau) const;

  [[nodiscard]] DriftingClock& clock(NodeId id);
  [[nodiscard]] Network& network() { return *network_; }
  [[nodiscard]] EventQueue& queue() { return queue_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] Logger& log() { return logger_; }

  /// Invoke NodeBehavior::scramble on `id` (transient fault on that node).
  void scramble_node(NodeId id);

 private:
  class ContextImpl;

  void deliver(NodeId dest, const WireMessage& msg);

  WorldConfig config_;
  Rng rng_;
  Logger logger_;
  EventQueue queue_;
  std::unique_ptr<Network> network_;

  struct NodeSlot {
    DriftingClock clock;
    std::unique_ptr<NodeBehavior> behavior;
    std::unique_ptr<ContextImpl> context;
    Rng rng{0};
    bool started = false;
  };
  std::vector<NodeSlot> nodes_;
  bool started_ = false;
};

}  // namespace ssbft
