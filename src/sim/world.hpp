// The World: n nodes, their clocks, the network, and the event loop.
//
// The World is the only component that sees both real time and every node's
// local time; protocol behaviors run entirely behind the NodeContext
// interface. Tests and the harness use the World's omniscient accessors to
// check the paper's real-time bounds (skews, convergence times).
//
// Two engines implement the deployment surface (WorldBase):
//   World       — the serial engine: one event queue, one Network.
//   ShardWorld  — conservative-parallel (sim/shard_world.hpp): nodes are
//                 partitioned across shards that advance in lock-step
//                 lookahead windows.
// Both derive every random stream from (seed, entity) and dispatch in
// (when, creator, seq) key order, so for any Scenario with a positive
// minimum network delay their observable histories are bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/timer_wheel.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace ssbft {

class Tracer;  // harness/trace.hpp; engines only carry the pointer

/// Scheduling policy for the conservative-parallel engine's shards. All
/// four policies produce bit-identical observable histories (digest parity
/// with the serial engine is the hard gate); they differ only in how the
/// work is spread across worker threads:
///   kStatic   contiguous equal-size node blocks, full barrier per
///             λ-window — the original engine, zero scheduling overhead.
///   kBalance  kStatic plus cost-aware repartitioning: per-node dispatch
///             counts feed a greedy balanced partition recomputed at
///             window barriers (with hysteresis) and at every chaos →
///             sharded migration, where imbalance is worst.
///   kSteal    kBalance plus deterministic intra-window work stealing:
///             idle workers claim whole nodes' within-window runnable
///             work from other shards. Per-node execution order is
///             preserved exactly, and within a window nodes are mutually
///             independent (every send lands at or after the window end),
///             so who executed what is unobservable.
///   kLax      kBalance plus slack windows à la Graphite/Sniper's
///             clock-skew-minimization barrier: shards run ahead of the
///             λ-window on slack, bounded by the slowest peer's published
///             frontier + λ, and commit only at deterministic window
///             edges k·λ apart.
enum class ShardSched : std::uint8_t {
  kStatic,
  kBalance,
  kSteal,
  kLax,
};

/// Number of ShardSched enumerators (test_enums checks to_string covers
/// exactly this many).
inline constexpr std::uint32_t kShardSchedCount = 4;

[[nodiscard]] const char* to_string(ShardSched sched);

/// Scheduler-level counters for the adaptive sharded engine: how many
/// λ-windows ran, how (im)balanced their per-worker dispatch counts were,
/// and how often the two adaptive mechanisms kicked in. Purely
/// observational — none of it feeds back into the simulation, so the
/// counters may differ across policies while digests stay identical.
/// DutyWorld sums one of these per sharded segment.
struct ShardSchedStats {
  std::uint64_t windows = 0;           // lookahead windows run
  std::uint64_t measured_windows = 0;  // windows with at least one dispatch
  std::uint64_t repartitions = 0;      // cost-aware boundary recomputations
  std::uint64_t steals = 0;            // foreign-shard node claims
  std::uint64_t stolen_events = 0;     // events executed on a thief worker
  std::uint64_t window_events = 0;     // dispatches over measured windows
  /// Per-window imbalance = max/min per-worker dispatch count (min clamped
  /// to 1), sampled over measured windows only. Under kSteal this is the
  /// EXECUTOR view — what the workers actually ran, post-stealing.
  double imbalance_max = 0.0;
  double imbalance_sum = 0.0;
  /// Per-window imbalance attributed to the OWNING shard, counting a
  /// stolen node's events against its owner. This is the signal the
  /// repartitioner acts on: stealing equalizes the executor view by
  /// design, which would otherwise mask exactly the imbalance a boundary
  /// move could fix. Identical to the executor view for non-steal
  /// policies.
  double owner_imbalance_max = 0.0;
  double owner_imbalance_sum = 0.0;

  [[nodiscard]] double imbalance_mean() const {
    return measured_windows == 0 ? 0.0
                                 : imbalance_sum / double(measured_windows);
  }

  [[nodiscard]] double owner_imbalance_mean() const {
    return measured_windows == 0
               ? 0.0
               : owner_imbalance_sum / double(measured_windows);
  }

  ShardSchedStats& operator+=(const ShardSchedStats& o) {
    windows += o.windows;
    measured_windows += o.measured_windows;
    repartitions += o.repartitions;
    steals += o.steals;
    stolen_events += o.stolen_events;
    window_events += o.window_events;
    if (o.imbalance_max > imbalance_max) imbalance_max = o.imbalance_max;
    imbalance_sum += o.imbalance_sum;
    if (o.owner_imbalance_max > owner_imbalance_max) {
      owner_imbalance_max = o.owner_imbalance_max;
    }
    owner_imbalance_sum += o.owner_imbalance_sum;
    return *this;
  }
};

struct WorldConfig {
  std::uint32_t n = 4;

  /// Network bound δ and processing bound π (real time). The model constant
  /// d = (δ+π)(1+ρ) is derived; see d_bound().
  Duration delta = milliseconds(1);
  Duration pi = microseconds(50);
  /// Clock drift bound ρ for non-faulty nodes.
  double rho = 1e-4;

  /// Actual delay distributions; defaults (set at construction if kind-less)
  /// are uniform over [δ/5, δ] and [0, π].
  DelayModel link_delay{};
  DelayModel proc_delay{};
  bool has_delay_models = false;

  /// Spread of initial clock offsets (arbitrary after a transient fault).
  Duration max_clock_offset = seconds(1);

  ChaosConfig chaos{};
  std::uint64_t seed = 1;
  LogLevel log_level = LogLevel::kWarn;

  /// Message-authentication scheme (sim/auth.hpp). Both engines derive the
  /// signing key from `seed`, so a migrated run keeps verifying its own
  /// traffic. kNull ⇒ the legacy untagged model.
  AuthKind auth = AuthKind::kNull;

  /// Route node timers (Context::set_timer) through the hierarchical timer
  /// wheel: O(1) arm/cancel, batched hand-over to the event heap (see
  /// sim/timer_wheel.hpp). false ⇒ the legacy path that parks every timer
  /// in the binary heap at arm time. Observable histories are identical
  /// either way (test_timer_wheel pins it); only dispatched() may differ —
  /// a timer cancelled while still in the wheel never becomes an event,
  /// while the heap path dispatches a suppressed no-op.
  bool timer_wheel = true;

  /// Shard count for the parallel engine. 0 (or 1) ⇒ the serial engine,
  /// unchanged default. Values above n are clamped to n. The Cluster falls
  /// back to the serial engine when the scenario offers no lookahead
  /// (min link+proc delay of zero) — λ = 0 degrades to serial execution,
  /// never to wrongness. Network chaos runs alternating instead: each
  /// chaos window is a serial segment, each gap between windows a sharded
  /// one, with full state migrations at every boundary
  /// (sim/duty_world.hpp).
  std::uint32_t shards = 0;

  /// Shard scheduling policy (see ShardSched). Only consulted when the
  /// sharded engine actually runs with more than one shard; results are
  /// bit-identical across all policies.
  ShardSched shard_sched = ShardSched::kStatic;

  /// Dissemination overlay for broadcast fan-out (sim/topology.hpp):
  /// all-to-all (flat, the default — byte-identical to the pre-topology
  /// engine), two-level federated clusters, or a gossip relay tree. Both
  /// engines resolve it against n at construction; malformed knobs refuse
  /// to build, degenerate ones degrade to flat.
  TopologyConfig topology{};

  /// Structured tracer (harness/trace.hpp), or nullptr for untraced runs.
  /// Engines arm a trace::Scope around their dispatch loops and emit their
  /// own engine-layer records. Observation only: digests are bit-identical
  /// with or without it (test_trace pins the matrix).
  Tracer* tracer = nullptr;

  /// d = (δ+π)(1+ρ), the paper's bound on send+process as measured on any
  /// non-faulty local timer.
  [[nodiscard]] Duration d_bound() const {
    const double ns = double((delta + pi).ns()) * (1.0 + rho);
    return Duration{static_cast<std::int64_t>(ns) + 1};
  }

  /// Fill in the default delay distributions (idempotent). Both engines —
  /// and the Cluster's engine selection — resolve through this one helper
  /// so they agree on the actual distributions.
  void resolve_delay_models();

  /// Conservative lookahead λ: no node can affect another sooner than this.
  /// Call after resolve_delay_models().
  [[nodiscard]] Duration lookahead() const {
    return link_delay.min + proc_delay.min;
  }
};

// --- shared per-entity stream derivations ----------------------------------
// derive_node_rng / derive_link_rng live beside rng_stream (util/rng.hpp) so
// the Network can share them without a layering inversion; the clock draw
// needs WorldConfig and lives here. Both engines call exactly these, and
// test_shard pins their first draws so a refactor cannot silently re-seed
// every experiment in the repository.

/// Drift rate then initial offset, drawn from the node's clock stream.
[[nodiscard]] DriftingClock derive_node_clock(const WorldConfig& config,
                                              NodeId id);

/// Complete in-flight state of one engine at a migration cut — the
/// currency both directions of an engine switch trade in.
///
/// A chaos window is a serial-engine phase (drop/corrupt/duplicate and the
/// unbounded chaos delays live in the Network); the stretches between
/// windows are where the windowed ShardWorld shines. DutyWorld
/// (sim/duty_world.hpp) alternates: at each boundary the active engine
/// exports this snapshot and the other adopts it — every pending delivery,
/// armed (or handed-over-but-unfired) timer record, RNG stream position,
/// key-channel counter, clock, and wire counter — so an N-cycle
/// alternating run is bit-identical to an all-serial one (test_duty pins
/// the matrix). The cut is exclusive: every event strictly before the
/// migration instant has dispatched, so everything here fires at or after
/// it.
struct WorldMigration {
  struct NodeState {
    DriftingClock clock;
    std::unique_ptr<NodeBehavior> behavior;  // may be null (no behavior set)
    Rng rng{0};                   // behavior stream position
    Rng link_rng{0};              // per-sender delay/chaos stream position
    std::uint64_t timer_seq = 0;  // odd-channel key position
    std::uint64_t send_seq = 0;   // even-channel key position
    bool started = false;
  };
  /// A pending world-level action (workload injection) with the key-less
  /// world-channel seq it was minted under. Filled by DutyWorld — the
  /// World cannot re-materialize type-erased queue closures, so the wrapper
  /// registers every schedule() itself (the closures are engine-agnostic).
  struct PendingAction {
    RealTime when;
    EventKey key;
    NodeId target = 0;
    std::function<void()> action;
  };

  std::vector<NodeState> nodes;
  std::vector<Network::PendingDelivery> deliveries;  // in-flight messages
  std::vector<TimerWheel::ExportedRecord> timers;    // live timer records
  std::vector<std::uint32_t> timer_generations;      // full slab ticket map
  std::vector<PendingAction> actions;
  Rng world_rng{0};                 // WorldBase::rng() stream position
  NetworkStats stats;               // wire counters so far
  std::uint64_t dispatched = 0;     // events so far (net of suppressed)
  std::uint64_t world_seq = 0;      // key-less world-channel position
  std::uint64_t forged_seq = 0;     // forged-channel position
  RealTime now{};                   // last prefix dispatch (< the cut)
};

/// Abstract deployment surface: everything the Cluster, the harness, and
/// the protocol-facing observation paths need, implemented by both engines.
/// `network()` and `queue()` expose the serial engine's internals for tests
/// and tools that drive them directly (taps, delay oracles, hand-scheduled
/// events); the sharded engine has no single queue or network and aborts —
/// callers using them are serial-only by construction.
class WorldBase {
 public:
  explicit WorldBase(const WorldConfig& config);
  virtual ~WorldBase();

  WorldBase(const WorldBase&) = delete;
  WorldBase& operator=(const WorldBase&) = delete;

  [[nodiscard]] std::uint32_t n() const { return config_.n; }
  [[nodiscard]] const WorldConfig& config() const { return config_; }

  /// Install the protocol/adversary running on `id`. May be called again
  /// later (Byzantine turnover, node recovery); the new behavior's on_start
  /// runs at the current instant if the world has started.
  virtual void set_behavior(NodeId id, std::unique_ptr<NodeBehavior> behavior) = 0;
  [[nodiscard]] virtual NodeBehavior* behavior(NodeId id) = 0;

  /// Calls on_start on every installed behavior. Idempotent per behavior.
  virtual void start() = 0;

  virtual void run_until(RealTime t) = 0;
  void run_for(Duration d) { run_until(now() + d); }
  /// Drain every pending event (useful for quiescence tests).
  virtual void run_to_quiescence(RealTime hard_deadline) = 0;

  [[nodiscard]] virtual RealTime now() const = 0;
  [[nodiscard]] virtual LocalTime local_now(NodeId id) const = 0;
  [[nodiscard]] virtual RealTime real_at(NodeId id, LocalTime tau) const = 0;

  [[nodiscard]] virtual DriftingClock& clock(NodeId id) = 0;
  [[nodiscard]] virtual Rng& rng() = 0;
  [[nodiscard]] virtual Logger& log() = 0;

  /// Invoke NodeBehavior::scramble on `id` (transient fault on that node).
  virtual void scramble_node(NodeId id) = 0;

  /// Schedule a world-level action (workload injection) at `when`. `target`
  /// is the node the action touches — the sharded engine runs it on that
  /// node's shard; the serial engine ignores it.
  virtual void schedule(RealTime when, NodeId target,
                        std::function<void()> action) = 0;

  /// Fault-injector backdoor: plant `msg` (possibly sender-forged) for
  /// `dest`, delivered after `delay`.
  virtual void inject_raw(NodeId dest, WireMessage msg, Duration delay) = 0;

  /// Aggregate wire counters (summed across shards on the parallel engine).
  [[nodiscard]] virtual NetworkStats net_stats() const = 0;
  /// Events dispatched so far (summed across shards).
  [[nodiscard]] virtual std::uint64_t dispatched() const = 0;

  /// Serial-engine internals; the sharded engine aborts (see class comment).
  [[nodiscard]] virtual Network& network() = 0;
  [[nodiscard]] virtual EventQueue& queue() = 0;

 protected:
  WorldConfig config_;  // delay models resolved at construction
};

/// The serial engine.
class World final : public WorldBase {
 public:
  explicit World(WorldConfig config);
  /// Adoption form: continue a sharded segment's run from its exported
  /// snapshot (the reverse migration — see WorldMigration). Deliveries
  /// re-materialize under their original keys, timer records re-arm at
  /// their original (index, generation) tickets, every stream/counter
  /// position carries over, and behaviors are rebound — NOT re-started.
  /// `handoff_export` pre-enables delivery tracking so this serial segment
  /// can itself be exported at the next cut.
  World(WorldConfig config, WorldMigration&& migration, bool handoff_export);
  ~World() override;

  void set_behavior(NodeId id, std::unique_ptr<NodeBehavior> behavior) override;
  [[nodiscard]] NodeBehavior* behavior(NodeId id) override;

  void start() override;

  void run_until(RealTime t) override;
  void run_to_quiescence(RealTime hard_deadline) override;

  /// Dispatch every event strictly before `t` (timers pumped exactly as in
  /// run_until), leaving now() at the last dispatch — the handoff cut. Any
  /// event an exported snapshot holds afterwards fires at or after `t`.
  void run_before(RealTime t);

  /// Record every delivery for export (must precede all traffic); see
  /// Network::enable_handoff_export.
  void enable_handoff_export() { network_->enable_handoff_export(); }

  /// Strip the world for the engine handoff: behaviors move out, in-flight
  /// deliveries/timers/counters/stream positions are snapshotted. The world
  /// is dead afterwards — destroy it (its remaining queue closures point at
  /// engine internals the snapshot re-materializes on the new engine).
  /// A second export, or any run/schedule after the first, is a hard
  /// precondition failure: it could only hand over a stale snapshot.
  [[nodiscard]] WorldMigration export_migration();

  [[nodiscard]] RealTime now() const override { return queue_.now(); }
  [[nodiscard]] LocalTime local_now(NodeId id) const override;
  [[nodiscard]] RealTime real_at(NodeId id, LocalTime tau) const override;

  [[nodiscard]] DriftingClock& clock(NodeId id) override;
  [[nodiscard]] Network& network() override { return *network_; }
  [[nodiscard]] EventQueue& queue() override { return queue_; }
  /// Timer-wheel occupancy gauges (StatsRegistry).
  [[nodiscard]] const TimerWheel& timers() const { return timers_; }
  [[nodiscard]] Rng& rng() override { return rng_; }
  [[nodiscard]] Logger& log() override { return logger_; }

  void scramble_node(NodeId id) override;

  void schedule(RealTime when, NodeId target,
                std::function<void()> action) override;
  void inject_raw(NodeId dest, WireMessage msg, Duration delay) override;
  [[nodiscard]] NetworkStats net_stats() const override {
    return network_->stats();
  }
  [[nodiscard]] std::uint64_t dispatched() const override {
    // Net of suppressed timer fires: a timer cancelled after hand-over
    // still pops as a no-op, and hand-over timing is backend/engine
    // dependent — netting it out makes the count invariant across the
    // serial/sharded engines AND the wheel/heap timer backends.
    return queue_.dispatched() - suppressed_timers_;
  }

 private:
  class ContextImpl;

  void deliver(NodeId dest, const WireMessage& msg);

  /// Hand every wheel timer due at or before `bound` to the event heap.
  void pump_timers(RealTime bound);
  /// Scheduled-closure target: claim the record and run on_timer.
  void fire_timer(TimerHandle handle);

  Rng rng_;
  Logger logger_;
  EventQueue queue_;
  TimerWheel timers_;
  std::vector<TimerWheel::Due> due_batch_;  // advance() scratch, reused
  std::uint64_t suppressed_timers_ = 0;     // cancelled-after-hand-over pops
  std::unique_ptr<Network> network_;

  struct NodeSlot {
    DriftingClock clock;
    std::unique_ptr<NodeBehavior> behavior;
    std::unique_ptr<ContextImpl> context;
    Rng rng{0};
    std::uint64_t timer_seq = 0;  // odd-channel EventKey seqs (see EventKey)
    bool started = false;
  };
  std::vector<NodeSlot> nodes_;
  bool started_ = false;
  bool exported_ = false;  // export_migration happened; the world is dead
};

}  // namespace ssbft
