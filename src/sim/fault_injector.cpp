#include "sim/fault_injector.hpp"

#include "sim/payload.hpp"

namespace ssbft {

WireMessage FaultInjector::random_message(Rng& rng) const {
  WireMessage msg;
  msg.kind = MsgKind(rng.next_below(std::uint64_t(MsgKind::kNumKinds)));
  msg.sender = NodeId(rng.next_below(world_.n()));
  msg.general = GeneralId{NodeId(rng.next_below(world_.n()))};
  // Mix plausible-looking small values with arbitrary ones: small values
  // collide with real workload values, which is the nastier case.
  msg.value = rng.next_bool(0.5) ? rng.next_below(4) : rng.next_u64();
  msg.broadcaster = NodeId(rng.next_below(world_.n()));
  msg.round = std::uint32_t(rng.next_below(2 * world_.n() + 2));
  // A forged body, sized to straddle the Payload inline/pooled threshold
  // (exercises pool slots on the forged path), plus a guessed tag. The
  // adversary cannot evaluate the keyed tag function, so under
  // AuthKind::kHmac the guess is (deterministically) wrong and the plant is
  // discarded at delivery; under kNull both fields are ignored/accepted.
  const auto size = std::uint32_t(rng.next_below(97));
  if (size > 0) {
    msg.payload = make_patterned_payload(size, rng.next_u64());
  }
  msg.auth = rng.next_u64();
  return msg;
}

void FaultInjector::transient_fault(const TransientFaultConfig& config) {
  Rng& rng = world_.rng();

  if (config.scramble_clocks) {
    for (NodeId id = 0; id < world_.n(); ++id) {
      world_.clock(id).set_offset(
          Duration{rng.next_in(0, config.max_clock_offset.ns())});
    }
  }

  if (config.scramble_state) {
    for (NodeId id = 0; id < world_.n(); ++id) world_.scramble_node(id);
  }

  for (NodeId dest = 0; dest < world_.n(); ++dest) {
    for (std::uint32_t i = 0; i < config.spurious_per_node; ++i) {
      const Duration delay{rng.next_in(0, config.spurious_span.ns())};
      world_.inject_raw(dest, random_message(rng), delay);
    }
  }
}

}  // namespace ssbft
