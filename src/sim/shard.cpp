#include "sim/shard.hpp"

#include <algorithm>
#include <utility>

#include "sim/shard_world.hpp"
#include "util/assert.hpp"

namespace ssbft {

// NodeContext for a sharded node. Mirrors World::ContextImpl exactly —
// same key channels, same stream draws — but routes through the shard.
class Shard::ContextImpl final : public NodeContext {
 public:
  ContextImpl(Shard& shard, NodeId id) : shard_(shard), id_(id) {}

  [[nodiscard]] NodeId id() const override { return id_; }
  [[nodiscard]] std::uint32_t n() const override { return shard_.world_.n(); }

  [[nodiscard]] LocalTime local_now() const override {
    return shard_.world_.local_now(id_);
  }

  void send(NodeId dest, WireMessage msg) override {
    shard_.send(id_, dest, msg);
  }

  void send_all(WireMessage msg) override { shard_.send_all(id_, msg); }

  TimerHandle set_timer(LocalTime when, std::uint64_t cookie) override {
    const RealTime fire =
        std::max(shard_.world_.real_at(id_, when), shard_.world_.now());
    Shard& shard = shard_;
    NodeSlot& slot = shard_.slot(id_);
    const EventKey key{id_, slot.timer_seq++ * 2 + 1};  // odd channel: timers
    if (shard.world_.config().timer_wheel) {
      // Per-shard wheel: a node only ever arms timers on its own shard, so
      // the wheel needs no synchronization and composes with the windows.
      return shard.timers_.schedule(fire, key, id_, cookie);
    }
    const TimerHandle handle =
        shard.timers_.arm_external(fire, key, id_, cookie);
    shard.queue_.schedule(fire, key,
                          [&shard, handle] { shard.fire_timer(handle); });
    return handle;
  }

  TimerHandle set_timer_after(Duration local_delay,
                              std::uint64_t cookie) override {
    return set_timer(local_now() + local_delay, cookie);
  }

  bool cancel_timer(TimerHandle handle) override {
    return shard_.timers_.cancel(handle);
  }

  Rng& rng() override { return shard_.slot(id_).rng; }
  Logger& log() override { return shard_.logger_; }

 private:
  Shard& shard_;
  NodeId id_;
};

Shard::Shard(ShardWorld& world, std::uint32_t index, std::uint32_t shard_count,
             NodeId first_node, NodeId end_node)
    : world_(world),
      index_(index),
      first_node_(first_node),
      end_node_(end_node),
      logger_(world.config().log_level),
      outbox_(shard_count) {
  SSBFT_EXPECTS(first_node_ < end_node_);
  const WorldConfig& config = world_.config();
  slots_.resize(end_node_ - first_node_);
  for (NodeId id = first_node_; id < end_node_; ++id) {
    NodeSlot& s = slots_[id - first_node_];
    s.clock = derive_node_clock(config, id);
    s.context = std::make_unique<ContextImpl>(*this, id);
    s.rng = derive_node_rng(config.seed, id);
    s.link_rng = derive_link_rng(config.seed, id);
  }
}

Shard::~Shard() = default;

Shard::NodeSlot& Shard::slot(NodeId id) {
  SSBFT_EXPECTS(owns(id));
  return slots_[id - first_node_];
}

void Shard::set_behavior(NodeId id, std::unique_ptr<NodeBehavior> behavior,
                         bool started) {
  NodeSlot& s = slot(id);
  s.behavior = std::move(behavior);
  s.started = false;
  if (started && s.behavior) {
    s.behavior->on_start(*s.context);
    s.started = true;
  }
}

NodeBehavior* Shard::behavior(NodeId id) { return slot(id).behavior.get(); }

void Shard::start_node(NodeId id) {
  NodeSlot& s = slot(id);
  if (s.behavior && !s.started) {
    s.behavior->on_start(*s.context);
    s.started = true;
  }
}

void Shard::scramble_node(NodeId id) {
  NodeSlot& s = slot(id);
  if (s.behavior) s.behavior->scramble(*s.context, s.rng);
}

DriftingClock& Shard::clock(NodeId id) { return slot(id).clock; }

Duration Shard::sample_delay(NodeSlot& from) {
  // Same draw order as Network::sample_delay: link then processing.
  const WorldConfig& config = world_.config();
  return config.link_delay.sample(from.link_rng) +
         config.proc_delay.sample(from.link_rng);
}

void Shard::send(NodeId from, NodeId dest, WireMessage msg) {
  SSBFT_EXPECTS(dest < world_.n());
  msg.sender = from;  // authenticated identity (Def. 2.2)
  ++stats_.sent;
  stats_.per_kind[std::size_t(msg.kind)]++;
  NodeSlot& sender = slot(from);
  const Duration delay = sample_delay(sender);
  const RealTime when = world_.now() + delay;
  const EventKey key{from, sender.send_seq++ * 2};  // even channel: network
  if (owns(dest)) {
    schedule_delivery(when, key, dest, msg);
    return;
  }
  Shard& target = world_.shard_of(dest);
  if (ShardWorld::current_shard() == this) {
    // Inside a window: buffer for the barrier. The bounded-delay model is
    // what makes this safe — the delivery cannot precede the next window.
    SSBFT_ASSERT(delay >= world_.lookahead());
    outbox_[target.index_].push_back(Pending{when, key, dest, msg});
  } else {
    // Serial phase (on_start, piecewise runs): no concurrency, insert
    // straight into the owning shard.
    target.schedule_delivery(when, key, dest, msg);
  }
}

void Shard::send_all(NodeId from, const WireMessage& msg) {
  // Same per-destination loop as the serial Network::send_all (which shares
  // one payload but samples, counts, and keys per destination in this exact
  // order), so a seeded run is bit-identical either way.
  for (NodeId dest = 0; dest < world_.n(); ++dest) send(from, dest, msg);
}

void Shard::schedule_delivery(RealTime when, EventKey key, NodeId dest,
                              const WireMessage& msg) {
  SSBFT_EXPECTS(owns(dest));
  Shard* shard = this;
  if (!handoff_export_) {
    queue_.schedule(when, key, [shard, dest, msg] {
      ++shard->stats_.delivered;
      shard->deliver(dest, msg);
    });
    return;
  }
  // Export mode: the payload rides in the tracking slab, the closure
  // carries only the slot index — whatever is still tracked at a cut IS
  // this shard's in-flight message set (see Network::schedule_delivery).
  const std::uint32_t index =
      track(Network::PendingDelivery{when, key, dest, msg, /*forged=*/false});
  queue_.schedule(when, key, [shard, index] {
    const Network::PendingDelivery pending = shard->untrack(index);
    ++shard->stats_.delivered;
    shard->deliver(pending.dest, pending.msg);
  });
}

void Shard::schedule_forged(RealTime when, EventKey key, NodeId dest,
                            const WireMessage& msg) {
  SSBFT_EXPECTS(owns(dest));
  Shard* shard = this;
  if (!handoff_export_) {
    queue_.schedule(when, key,
                    [shard, dest, msg] { shard->deliver(dest, msg); });
    return;
  }
  const std::uint32_t index =
      track(Network::PendingDelivery{when, key, dest, msg, /*forged=*/true});
  queue_.schedule(when, key, [shard, index] {
    const Network::PendingDelivery pending = shard->untrack(index);
    shard->deliver(pending.dest, pending.msg);
  });
}

std::uint32_t Shard::track(const Network::PendingDelivery& pending) {
  SSBFT_EXPECTS(!exported_);  // traffic after export ⇒ stale snapshot
  if (!pending_free_.empty()) {
    const std::uint32_t index = pending_free_.back();
    pending_free_.pop_back();
    pending_[index] = pending;
    pending_live_[index] = true;
    return index;
  }
  pending_.push_back(pending);
  pending_live_.push_back(true);
  return std::uint32_t(pending_.size() - 1);
}

Network::PendingDelivery Shard::untrack(std::uint32_t index) {
  SSBFT_EXPECTS(!exported_);  // dispatch after export ⇒ stale snapshot
  SSBFT_ASSERT(pending_live_[index]);
  pending_live_[index] = false;
  pending_free_.push_back(index);
  return pending_[index];
}

void Shard::export_deliveries(std::vector<Network::PendingDelivery>& out) {
  SSBFT_EXPECTS(handoff_export_ && !exported_);
  exported_ = true;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (pending_live_[i]) out.push_back(pending_[i]);
  }
}

void Shard::export_node(NodeId id, WorldMigration::NodeState& out) {
  NodeSlot& s = slot(id);
  out.clock = s.clock;
  out.behavior = std::move(s.behavior);
  out.rng = s.rng;
  out.link_rng = s.link_rng;
  out.timer_seq = s.timer_seq;
  out.send_seq = s.send_seq;
  out.started = s.started;
}

void Shard::deliver(NodeId dest, const WireMessage& msg) {
  NodeSlot& s = slot(dest);
  if (s.behavior) s.behavior->on_message(*s.context, msg);
}

void Shard::pump_timers(RealTime bound) {
  timers_.advance(bound, due_batch_);
  for (const TimerWheel::Due& due : due_batch_) {
    Shard* shard = this;
    queue_.schedule(due.when, due.key,
                    [shard, handle = due.handle] { shard->fire_timer(handle); });
  }
}

void Shard::fire_timer(TimerHandle handle) {
  NodeId node;
  std::uint64_t cookie;
  if (!timers_.claim(handle, node, cookie)) {
    ++suppressed_timers_;  // cancelled after hand-over: a no-op pop
    return;
  }
  NodeSlot& fired = slot(node);
  if (fired.behavior) fired.behavior->on_timer(*fired.context, cookie);
}

void Shard::process_until(RealTime end, bool inclusive) {
  logger_.set_now(queue_.now());
  while (true) {
    // Hand due timers to the queue inside the window (same shared policy
    // as the serial engine, timer_pump_bound). A timer landing AT an
    // exclusive window edge may enter the queue now; the dispatch gate
    // below still holds it for the next window — early hand-over is
    // unobservable, dispatch order is the queue's.
    const RealTime bound = timer_pump_bound(queue_, timers_, end);
    if (bound != RealTime::max()) {
      pump_timers(bound);
      continue;
    }
    if (queue_.empty()) break;
    const RealTime next = queue_.next_time();
    if (inclusive ? next > end : next >= end) break;
    queue_.run_one();
    logger_.set_now(queue_.now());
  }
}

void Shard::adopt_node(NodeId id, WorldMigration::NodeState&& state) {
  NodeSlot& s = slot(id);
  s.clock = state.clock;
  s.behavior = std::move(state.behavior);
  s.rng = state.rng;
  s.link_rng = state.link_rng;
  s.timer_seq = state.timer_seq;
  s.send_seq = state.send_seq;
  s.started = state.started;
  // The serial engine's context object dies with it; behaviors that cached
  // it (the protocol stacks do, at on_start) must point at this shard's.
  if (s.behavior) s.behavior->rebind(*s.context);
}

void Shard::import_timers(
    const std::vector<TimerWheel::ExportedRecord>& records,
    const std::vector<std::uint32_t>& generations, RealTime now) {
  timers_.import_records(records, generations, now,
                         [this](NodeId node) { return owns(node); }, index_,
                         std::uint32_t(outbox_.size()));
}

void Shard::drain_inboxes() {
  for (const auto& peer : world_.shards_) {
    if (peer.get() == this) continue;
    std::vector<Pending>& inbox = peer->outbox_[index_];
    for (const Pending& p : inbox) {
      schedule_delivery(p.when, p.key, p.dest, p.msg);
    }
    inbox.clear();
  }
}

}  // namespace ssbft
