#include "sim/shard.hpp"

#include <algorithm>
#include <utility>

#include "harness/trace.hpp"
#include "sim/shard_world.hpp"
#include "util/assert.hpp"

namespace ssbft {

// NodeContext for a sharded node. Mirrors World::ContextImpl exactly —
// same key channels, same stream draws — but routes through the shard.
class Shard::ContextImpl final : public NodeContext {
 public:
  ContextImpl(Shard& shard, NodeId id) : shard_(shard), id_(id) {}

  [[nodiscard]] NodeId id() const override { return id_; }
  [[nodiscard]] std::uint32_t n() const override { return shard_.world_.n(); }

  [[nodiscard]] LocalTime local_now() const override {
    return shard_.world_.local_now(id_);
  }

  void send(NodeId dest, WireMessage msg) override {
    shard_.send(id_, dest, msg);
  }

  void send_all(WireMessage msg) override { shard_.send_all(id_, msg); }

  TimerHandle set_timer(LocalTime when, std::uint64_t cookie) override {
    const RealTime fire =
        std::max(shard_.world_.real_at(id_, when), shard_.world_.now());
    Shard& shard = shard_;
    NodeSlot& slot = shard_.slot(id_);
    const EventKey key{id_, slot.timer_seq++ * 2 + 1};  // odd channel: timers
    if (shard.steal_) {
      // Steal windows share the wheel between the owner and thieves, so
      // every wheel op takes the shard's execution lock while a window is
      // running. A fire INSIDE the current window cannot wait for the next
      // plan-time pump — park it straight in the executing node's queue
      // (timers are always self-node, and this worker owns that queue for
      // the whole window).
      const bool executing = ShardWorld::tl_exec_ != nullptr;
      const bool in_window =
          executing && (shard.world_.window_inclusive_
                            ? fire <= shard.world_.window_end_
                            : fire < shard.world_.window_end_);
      if (!in_window && shard.world_.config().timer_wheel) {
        if (executing) {
          std::lock_guard<std::mutex> lock(shard.exec_mutex_);
          return shard.timers_.schedule(fire, key, id_, cookie);
        }
        return shard.timers_.schedule(fire, key, id_, cookie);
      }
      TimerHandle handle;
      if (executing) {
        std::lock_guard<std::mutex> lock(shard.exec_mutex_);
        handle = shard.timers_.arm_external(fire, key, id_, cookie);
      } else {
        handle = shard.timers_.arm_external(fire, key, id_, cookie);
      }
      shard.node_queue(id_).schedule(
          fire, key, [&shard, handle] { shard.fire_timer(handle); });
      return handle;
    }
    if (shard.world_.config().timer_wheel) {
      // Per-shard wheel: a node only ever arms timers on its own shard, so
      // the wheel needs no synchronization and composes with the windows.
      return shard.timers_.schedule(fire, key, id_, cookie);
    }
    const TimerHandle handle =
        shard.timers_.arm_external(fire, key, id_, cookie);
    shard.queue_.schedule(fire, key,
                          [&shard, handle] { shard.fire_timer(handle); });
    return handle;
  }

  TimerHandle set_timer_after(Duration local_delay,
                              std::uint64_t cookie) override {
    return set_timer(local_now() + local_delay, cookie);
  }

  bool cancel_timer(TimerHandle handle) override {
    if (shard_.steal_ && ShardWorld::tl_exec_ != nullptr) {
      std::lock_guard<std::mutex> lock(shard_.exec_mutex_);
      return shard_.timers_.cancel(handle);
    }
    return shard_.timers_.cancel(handle);
  }

  Rng& rng() override { return shard_.slot(id_).rng; }
  Logger& log() override {
    // Thieves must not write the owner's logger; the per-worker exec
    // logger absorbs log output during steal windows.
    if (ShardWorld::ExecContext* exec = ShardWorld::tl_exec_) {
      return exec->logger;
    }
    return shard_.logger_;
  }

 private:
  Shard& shard_;
  NodeId id_;
};

Shard::Shard(ShardWorld& world, std::uint32_t index, std::uint32_t shard_count,
             NodeId first_node, NodeId end_node)
    : world_(world),
      index_(index),
      first_node_(first_node),
      end_node_(end_node),
      steal_(world.config().shard_sched == ShardSched::kSteal &&
             shard_count > 1),
      lax_(world.config().shard_sched == ShardSched::kLax && shard_count > 1),
      topo_(world.config().topology.resolved(world.config().n)),
      logger_(world.config().log_level),
      auth_(world.config().auth, world.config().seed),
      outbox_(shard_count) {
  SSBFT_EXPECTS(first_node_ < end_node_);
  const WorldConfig& config = world_.config();
  slots_.resize(end_node_ - first_node_);
  if (steal_) node_queues_ = std::vector<EventQueue>(end_node_ - first_node_);
  for (NodeId id = first_node_; id < end_node_; ++id) {
    NodeSlot& s = slots_[id - first_node_];
    s.clock = derive_node_clock(config, id);
    s.context = std::make_unique<ContextImpl>(*this, id);
    s.rng = derive_node_rng(config.seed, id);
    s.link_rng = derive_link_rng(config.seed, id);
  }
  // Partition the wheel's allocation space from birth: sibling shards must
  // never hand out the same record index, or a later export merge (engine
  // handoff OR in-place repartition) would fold colliding slabs — two live
  // timers at one index, mismatched generation tickets. The adoption path
  // re-imports over this with the real snapshot; the index choice itself is
  // unobservable (dispatch order is the keys').
  if (shard_count > 1) {
    timers_.import_records({}, {}, RealTime::zero(),
                           [](NodeId) { return false; }, index_, shard_count);
  }
}

Shard::~Shard() = default;

Shard::NodeSlot& Shard::slot(NodeId id) {
  SSBFT_EXPECTS(owns(id));
  return slots_[id - first_node_];
}

EventQueue& Shard::node_queue(NodeId id) {
  SSBFT_ASSERT(owns(id));
  return node_queues_[id - first_node_];
}

EventQueue& Shard::dest_queue(NodeId dest) {
  return steal_ ? node_queue(dest) : queue_;
}

NetworkStats& Shard::wire_stats() {
  if (ShardWorld::ExecContext* exec = ShardWorld::tl_exec_) return exec->stats;
  return stats_;
}

void Shard::set_behavior(NodeId id, std::unique_ptr<NodeBehavior> behavior,
                         bool started) {
  NodeSlot& s = slot(id);
  s.behavior = std::move(behavior);
  s.started = false;
  if (started && s.behavior) {
    s.behavior->on_start(*s.context);
    s.started = true;
  }
}

NodeBehavior* Shard::behavior(NodeId id) { return slot(id).behavior.get(); }

void Shard::start_node(NodeId id) {
  NodeSlot& s = slot(id);
  if (s.behavior && !s.started) {
    s.behavior->on_start(*s.context);
    s.started = true;
  }
}

void Shard::scramble_node(NodeId id) {
  NodeSlot& s = slot(id);
  if (s.behavior) s.behavior->scramble(*s.context, s.rng);
}

DriftingClock& Shard::clock(NodeId id) { return slot(id).clock; }

std::uint64_t Shard::dispatched() const {
  std::uint64_t total = queue_.dispatched();
  for (const EventQueue& q : node_queues_) total += q.dispatched();
  return total - suppressed_timers_;
}

RealTime Shard::next_pending_time() const {
  RealTime next = queue_.empty() ? RealTime::max() : queue_.next_time();
  for (const EventQueue& q : node_queues_) {
    if (!q.empty()) next = std::min(next, q.next_time());
  }
  return next;
}

void Shard::advance_queues(RealTime t) {
  queue_.run_until(t);
  for (EventQueue& q : node_queues_) q.run_until(t);
}

RealTime Shard::last_queue_now() const {
  RealTime last = queue_.now();
  for (const EventQueue& q : node_queues_) last = std::max(last, q.now());
  return last;
}

Duration Shard::sample_delay(NodeSlot& from) {
  // Same draw order as Network::sample_delay: link then processing.
  const WorldConfig& config = world_.config();
  return config.link_delay.sample(from.link_rng) +
         config.proc_delay.sample(from.link_rng);
}

void Shard::send(NodeId from, NodeId dest, WireMessage msg) {
  // Unicast copies are always direct — a behavior echoing back a received
  // relay copy must not re-disseminate it (see Network::send).
  admit(from, dest, std::move(msg), kRouteDirect);
}

void Shard::admit(NodeId from, NodeId dest, WireMessage msg,
                  std::uint8_t route_mark) {
  SSBFT_EXPECTS(dest < world_.n());
  msg.sender = from;       // authenticated identity (Def. 2.2)
  msg.route = route_mark;  // dissemination duty; outside the signed fields
  auth_.sign(msg);         // tag at origin (binds the sender)
  NetworkStats& stats = wire_stats();
  ++stats.sent;
  stats.per_kind[std::size_t(msg.kind)]++;
  stats.payload_bytes += msg.payload.size();
  NodeSlot& sender = slot(from);
  const Duration delay = sample_delay(sender);
  const RealTime when = world_.now() + delay;
  const EventKey key{from, sender.send_seq++ * 2};  // even channel: network
  dispatch_send(dest, when, key, std::move(msg));
}

void Shard::dispatch_send(NodeId dest, RealTime when, EventKey key,
                          WireMessage msg) {
  // Delay recomputed only for the lookahead assertions below.
  [[maybe_unused]] const Duration delay = when - world_.now();
  if (steal_ && ShardWorld::tl_exec_ != nullptr) {
    // Steal window: even a same-shard destination may be executing on
    // another worker right now, so EVERY send parks in the worker's private
    // outbox and merges at the barrier. The heap's key order makes the
    // detour unobservable.
    SSBFT_ASSERT(delay >= world_.lookahead());
    ShardWorld::tl_exec_->outbox[world_.shard_index_[dest]].push(
        Pending{when, key, dest, std::move(msg)});
    return;
  }
  if (owns(dest)) {
    schedule_delivery(when, key, dest, std::move(msg));
    return;
  }
  Shard& target = world_.shard_of(dest);
  if (ShardWorld::current_shard() == this) {
    // Inside a window: buffer for the barrier. The bounded-delay model is
    // what makes this safe — the delivery cannot precede the next window.
    SSBFT_ASSERT(delay >= world_.lookahead());
    if (lax_) {
      // Lax window: hand it to the destination NOW (under its inbox lock)
      // so the receiver's slack horizon can run ahead past the λ edge.
      target.push_lax(Pending{when, key, dest, std::move(msg)});
    } else {
      outbox_[target.index_].push(Pending{when, key, dest, std::move(msg)});
    }
  } else {
    // Serial phase (on_start, piecewise runs): no concurrency, insert
    // straight into the owning shard.
    target.schedule_delivery(when, key, dest, std::move(msg));
  }
}

void Shard::send_all(NodeId from, const WireMessage& msg) {
  // Flat: same per-destination loop as the serial Network::send_all (which
  // shares one payload but samples, counts, and keys per destination in
  // this exact order), so a seeded run is bit-identical either way.
  if (!topo_.active()) {
    for (NodeId dest = 0; dest < world_.n(); ++dest) send(from, dest, msg);
    return;
  }
  // Overlay: the origin emits only its own share; receivers of route-marked
  // copies forward the rest at delivery — same targets, same order as the
  // serial engine's Network::send_all.
  topology_origin_targets(topo_, world_.n(), from,
                          [&](NodeId dest, std::uint8_t route_mark) {
                            admit(from, dest, msg, route_mark);
                          });
}

void Shard::relay(NodeId self, const WireMessage& msg) {
  if (!topo_.active() || msg.route == kRouteDirect) return;
  ++wire_stats().topology_hops;
  trace::instant(TraceLayer::kWorkload, TraceName::kRelay, self,
                 std::int64_t(msg.route));
  topology_relay_targets(
      topo_, world_.n(), self, msg.sender, msg.route,
      [&](NodeId dest, std::uint8_t route_mark) {
        // Forwarded bytes keep the ORIGIN's sender and tag; the relay node
        // pays the delay/key draws from its own streams (which this shard —
        // or the executing steal worker — owns at the delivery instant), so
        // both engines draw identically. Not re-counted as sent.
        WireMessage copy = msg;
        copy.route = route_mark;
        ++wire_stats().fanout_msgs;
        NodeSlot& relay_slot = slot(self);
        const Duration delay = sample_delay(relay_slot);
        const RealTime when = world_.now() + delay;
        const EventKey key{self, relay_slot.send_seq++ * 2};
        dispatch_send(dest, when, key, std::move(copy));
      });
}

void Shard::schedule_delivery(RealTime when, EventKey key, NodeId dest,
                              WireMessage msg) {
  SSBFT_EXPECTS(owns(dest));
  Shard* shard = this;
  EventQueue& queue = dest_queue(dest);
  // The authenticator check runs inside the closure — at the delivery
  // instant — as a pure function of message content, so serial, sharded,
  // and migrated runs reject the same copies at the same points of the
  // total order (see Network::schedule_delivery).
  if (!handoff_export_) {
    queue.schedule(when, key, [shard, dest, msg = std::move(msg)] {
      if (!shard->auth_.verify(msg)) {
        shard->reject(dest);
        return;
      }
      shard->relay(dest, msg);  // relay duty precedes local processing
      ++shard->wire_stats().delivered;
      shard->deliver(dest, msg);
    });
    return;
  }
  // Export mode: the payload rides in the tracking slab, the closure
  // carries only the slot index — whatever is still tracked at a cut IS
  // this shard's in-flight message set (see Network::schedule_delivery).
  const std::uint32_t index = track(Network::PendingDelivery{
      when, key, dest, std::move(msg), /*forged=*/false});
  queue.schedule(when, key, [shard, index] {
    const Network::PendingDelivery pending = shard->untrack(index);
    if (!shard->auth_.verify(pending.msg)) {
      shard->reject(pending.dest);
      return;
    }
    shard->relay(pending.dest, pending.msg);
    ++shard->wire_stats().delivered;
    shard->deliver(pending.dest, pending.msg);
  });
}

void Shard::schedule_forged(RealTime when, EventKey key, NodeId dest,
                            WireMessage msg) {
  SSBFT_EXPECTS(owns(dest));
  Shard* shard = this;
  EventQueue& queue = dest_queue(dest);
  if (!handoff_export_) {
    queue.schedule(when, key, [shard, dest, msg = std::move(msg)] {
      if (!shard->auth_.verify(msg)) {
        shard->reject(dest);
        return;
      }
      shard->relay(dest, msg);  // relay duty precedes local processing
      shard->deliver(dest, msg);
    });
    return;
  }
  const std::uint32_t index = track(
      Network::PendingDelivery{when, key, dest, std::move(msg), /*forged=*/true});
  queue.schedule(when, key, [shard, index] {
    const Network::PendingDelivery pending = shard->untrack(index);
    if (!shard->auth_.verify(pending.msg)) {
      shard->reject(pending.dest);
      return;
    }
    shard->relay(pending.dest, pending.msg);
    shard->deliver(pending.dest, pending.msg);
  });
}

void Shard::schedule_action(RealTime when, EventKey key, NodeId target,
                            std::function<void()> action) {
  SSBFT_EXPECTS(owns(target));
  dest_queue(target).schedule(when, key, std::move(action));
}

std::uint32_t Shard::track(const Network::PendingDelivery& pending) {
  SSBFT_EXPECTS(!exported_);  // traffic after export ⇒ stale snapshot
  if (!pending_free_.empty()) {
    const std::uint32_t index = pending_free_.back();
    pending_free_.pop_back();
    pending_[index] = pending;
    pending_live_[index] = true;
    return index;
  }
  pending_.push_back(pending);
  pending_live_.push_back(true);
  return std::uint32_t(pending_.size() - 1);
}

Network::PendingDelivery Shard::untrack(std::uint32_t index) {
  if (steal_ && ShardWorld::tl_exec_ != nullptr) {
    // A thief's dispatch recycles slab slots concurrently with the owner's.
    std::lock_guard<std::mutex> lock(exec_mutex_);
    return untrack_unlocked(index);
  }
  return untrack_unlocked(index);
}

Network::PendingDelivery Shard::untrack_unlocked(std::uint32_t index) {
  SSBFT_EXPECTS(!exported_);  // dispatch after export ⇒ stale snapshot
  SSBFT_ASSERT(pending_live_[index]);
  pending_live_[index] = false;
  pending_free_.push_back(index);
  return pending_[index];
}

void Shard::export_deliveries(std::vector<Network::PendingDelivery>& out) {
  SSBFT_EXPECTS(handoff_export_ && !exported_);
  exported_ = true;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (pending_live_[i]) out.push_back(pending_[i]);
  }
}

void Shard::export_node(NodeId id, WorldMigration::NodeState& out) {
  NodeSlot& s = slot(id);
  out.clock = s.clock;
  out.behavior = std::move(s.behavior);
  out.rng = s.rng;
  out.link_rng = s.link_rng;
  out.timer_seq = s.timer_seq;
  out.send_seq = s.send_seq;
  out.started = s.started;
}

void Shard::deliver(NodeId dest, const WireMessage& msg) {
  world_.note_cost(dest);
  NodeSlot& s = slot(dest);
  if (s.behavior) s.behavior->on_message(*s.context, msg);
}

void Shard::reject(NodeId dest) {
  ++wire_stats().auth_rejected;
  trace::instant(TraceLayer::kWorkload, TraceName::kAuthReject, dest);
}

void Shard::pump_timers(RealTime bound) {
  timers_.advance(bound, due_batch_);
  for (const TimerWheel::Due& due : due_batch_) {
    Shard* shard = this;
    // Timer keys are creator == owning node, which routes each record to
    // its node's queue under kSteal and to the central queue otherwise.
    dest_queue(NodeId(due.key.creator))
        .schedule(due.when, due.key,
                  [shard, handle = due.handle] { shard->fire_timer(handle); });
  }
}

void Shard::fire_timer(TimerHandle handle) {
  NodeId node;
  std::uint64_t cookie;
  if (steal_ && ShardWorld::tl_exec_ != nullptr) {
    std::lock_guard<std::mutex> lock(exec_mutex_);
    if (!timers_.claim(handle, node, cookie)) {
      ++suppressed_timers_;  // under the lock: thieves suppress too
      return;
    }
  } else if (!timers_.claim(handle, node, cookie)) {
    ++suppressed_timers_;  // cancelled after hand-over: a no-op pop
    return;
  }
  world_.note_cost(node);
  NodeSlot& fired = slot(node);
  if (fired.behavior) fired.behavior->on_timer(*fired.context, cookie);
}

void Shard::process_until(RealTime end, bool inclusive) {
  const trace::Scope traced(world_.config().tracer, queue_.now_ptr());
  logger_.set_now(queue_.now());
  while (true) {
    // Hand due timers to the queue inside the window (same shared policy
    // as the serial engine, timer_pump_bound). A timer landing AT an
    // exclusive window edge may enter the queue now; the dispatch gate
    // below still holds it for the next window — early hand-over is
    // unobservable, dispatch order is the queue's.
    const RealTime bound = timer_pump_bound(queue_, timers_, end);
    if (bound != RealTime::max()) {
      pump_timers(bound);
      continue;
    }
    if (queue_.empty()) break;
    const RealTime next = queue_.next_time();
    if (inclusive ? next > end : next >= end) break;
    queue_.run_one();
    logger_.set_now(queue_.now());
  }
}

void Shard::build_steal_items(RealTime end, bool inclusive) {
  // Mid-window pumping is impossible once thieves share the wheel, so hand
  // over everything due through the window edge now, at plan time. Early
  // hand-over is unobservable: the per-node dispatch gate still holds each
  // event for its window (see process_until).
  pump_timers(end);
  steal_items_.clear();
  for (NodeId id = first_node_; id < end_node_; ++id) {
    EventQueue& queue = node_queue(id);
    if (queue.empty()) continue;
    const RealTime next = queue.next_time();
    if (inclusive ? next <= end : next < end) steal_items_.push_back(id);
  }
}

std::uint64_t Shard::run_node_window(NodeId id, RealTime end, bool inclusive) {
  EventQueue& queue = node_queue(id);
  const trace::Scope traced(world_.config().tracer, queue.now_ptr());
  ShardWorld::ExecContext* exec = ShardWorld::tl_exec_;
  const std::uint64_t before = queue.dispatched();
  while (!queue.empty()) {
    const RealTime next = queue.next_time();
    if (inclusive ? next > end : next >= end) break;
    queue.run_one();
    if (exec != nullptr) exec->logger.set_now(queue.now());
  }
  return queue.dispatched() - before;
}

void Shard::push_lax(Pending&& p) {
  std::lock_guard<std::mutex> lock(exec_mutex_);
  lax_inbox_.push(std::move(p));
}

void Shard::drain_lax_inbox() {
  {
    std::lock_guard<std::mutex> lock(exec_mutex_);
    lax_scratch_.swap(lax_inbox_);
  }
  lax_scratch_.drain([this](Pending&& p) {
    schedule_delivery(p.when, p.key, p.dest, std::move(p.msg));
  });
}

void Shard::adopt_node(NodeId id, WorldMigration::NodeState&& state) {
  NodeSlot& s = slot(id);
  s.clock = state.clock;
  s.behavior = std::move(state.behavior);
  s.rng = state.rng;
  s.link_rng = state.link_rng;
  s.timer_seq = state.timer_seq;
  s.send_seq = state.send_seq;
  s.started = state.started;
  // The serial engine's context object dies with it; behaviors that cached
  // it (the protocol stacks do, at on_start) must point at this shard's.
  if (s.behavior) s.behavior->rebind(*s.context);
}

void Shard::import_timers(
    const std::vector<TimerWheel::ExportedRecord>& records,
    const std::vector<std::uint32_t>& generations, RealTime now) {
  timers_.import_records(records, generations, now,
                         [this](NodeId node) { return owns(node); }, index_,
                         std::uint32_t(outbox_.size()));
}

void Shard::drain_inboxes() {
  const auto sink = [this](Pending&& p) {
    schedule_delivery(p.when, p.key, p.dest, std::move(p.msg));
  };
  for (const auto& peer : world_.shards_) {
    if (peer.get() == this) continue;
    peer->outbox_[index_].drain(sink);
  }
  if (steal_) {
    // Merge the per-worker execution outboxes, in worker order. Key order
    // makes the merge order unobservable; worker order keeps it
    // deterministic anyway.
    for (auto& exec : world_.exec_) {
      exec->outbox[index_].drain(sink);
    }
  }
  if (lax_) {
    // Leftovers pushed after this shard finished its window — all at or
    // after the window edge (the frontier argument in shard_world.cpp).
    drain_lax_inbox();
  }
}

}  // namespace ssbft
