#include "sim/shard_world.hpp"

#include <algorithm>
#include <barrier>
#include <cstdlib>
#include <thread>
#include <utility>

#include "util/assert.hpp"

namespace ssbft {

thread_local Shard* ShardWorld::tl_current_shard_ = nullptr;

std::uint32_t ShardWorld::effective_shards(const WorldConfig& config) {
  WorldConfig resolved = config;
  resolved.resolve_delay_models();
  std::uint32_t shards = std::max(1u, resolved.shards);
  shards = std::min(shards, resolved.n);
  // λ = 0 means no conservative window can exist: degrade to one shard
  // (serial semantics), never to wrongness.
  if (resolved.lookahead() <= Duration::zero()) shards = 1;
  return shards;
}

ShardWorld::ShardWorld(WorldConfig config)
    : WorldBase(config), rng_(config_.seed), logger_(config_.log_level) {
  lookahead_ = config_.lookahead();
  const std::uint32_t shards = effective_shards(config_);
  SSBFT_EXPECTS(shards == 1 || lookahead_ > Duration::zero());
  shards_.reserve(shards);
  shard_index_.resize(config_.n);
  for (std::uint32_t s = 0; s < shards; ++s) {
    const NodeId first = NodeId(std::size_t(s) * config_.n / shards);
    const NodeId end = NodeId(std::size_t(s + 1) * config_.n / shards);
    for (NodeId id = first; id < end; ++id) shard_index_[id] = s;
    shards_.push_back(std::make_unique<Shard>(*this, s, shards, first, end));
  }
}

ShardWorld::ShardWorld(WorldConfig config, WorldMigration&& migration,
                       bool handoff_export)
    : ShardWorld(std::move(config)) {
  SSBFT_EXPECTS(migration.nodes.size() == config_.n);
  // Delivery tracking must be live BEFORE the migrated in-flight set
  // re-materializes below, or those deliveries would be lost to the next
  // cut's export.
  if (handoff_export) enable_handoff_export();
  // Counters and stream positions continue where the serial prefix stopped:
  // the suffix must mint the exact keys and draws an uninterrupted serial
  // run would have.
  global_now_ = migration.now;
  started_ = true;
  world_seq_ = migration.world_seq;
  forged_seq_ = migration.forged_seq;
  world_stats_ = migration.stats;
  base_dispatched_ = migration.dispatched;
  rng_ = migration.world_rng;
  for (NodeId id = 0; id < config_.n; ++id) {
    shard_of(id).adopt_node(id, std::move(migration.nodes[id]));
  }
  for (auto& shard : shards_) {
    shard->import_timers(migration.timers, migration.timer_generations,
                         migration.now);
  }
  // In-flight deliveries and pending workload actions park straight in
  // their owner's queue with their original keys. A chaos delivery may land
  // well inside the first windows — that is fine: the conservative-window
  // argument constrains only traffic GENERATED during a window, and the
  // post-cut network is non-faulty (every new send respects λ).
  for (const Network::PendingDelivery& p : migration.deliveries) {
    if (p.forged) {
      shard_of(p.dest).schedule_forged(p.when, p.key, p.dest, p.msg);
    } else {
      shard_of(p.dest).schedule_delivery(p.when, p.key, p.dest, p.msg);
    }
  }
  for (WorldMigration::PendingAction& a : migration.actions) {
    shard_of(a.target).queue().schedule(a.when, a.key, std::move(a.action));
  }
}

ShardWorld::~ShardWorld() = default;

void ShardWorld::set_behavior(NodeId id,
                              std::unique_ptr<NodeBehavior> behavior) {
  SSBFT_EXPECTS(id < config_.n);
  shard_of(id).set_behavior(id, std::move(behavior), started_);
}

NodeBehavior* ShardWorld::behavior(NodeId id) {
  SSBFT_EXPECTS(id < config_.n);
  return shard_of(id).behavior(id);
}

void ShardWorld::start() {
  started_ = true;
  // Same node order as the serial World::start — on_start handlers may send
  // immediately, and those sends must mint the same keys and stream draws.
  for (NodeId id = 0; id < config_.n; ++id) shard_of(id).start_node(id);
}

RealTime ShardWorld::now() const {
  if (const Shard* shard = tl_current_shard_) return shard->queue().now();
  return global_now_;
}

LocalTime ShardWorld::local_now(NodeId id) const {
  SSBFT_EXPECTS(id < config_.n);
  return const_cast<ShardWorld*>(this)->shard_of(id).clock(id).local_at(now());
}

RealTime ShardWorld::real_at(NodeId id, LocalTime tau) const {
  SSBFT_EXPECTS(id < config_.n);
  return const_cast<ShardWorld*>(this)->shard_of(id).clock(id).real_at(tau);
}

DriftingClock& ShardWorld::clock(NodeId id) {
  SSBFT_EXPECTS(id < config_.n);
  return shard_of(id).clock(id);
}

void ShardWorld::scramble_node(NodeId id) {
  SSBFT_EXPECTS(id < config_.n);
  shard_of(id).scramble_node(id);
}

void ShardWorld::schedule(RealTime when, NodeId target,
                          std::function<void()> action) {
  SSBFT_EXPECTS(target < config_.n);
  SSBFT_EXPECTS(tl_current_shard_ == nullptr);  // serial phases only
  SSBFT_EXPECTS(!exported_);
  shard_of(target).queue().schedule(when, next_world_key(), std::move(action));
}

void ShardWorld::inject_raw(NodeId dest, WireMessage msg, Duration delay) {
  SSBFT_EXPECTS(dest < config_.n);
  SSBFT_EXPECTS(tl_current_shard_ == nullptr);  // serial phases only
  SSBFT_EXPECTS(!exported_);
  ++world_stats_.forged;
  // Forged channel: the same content-based key the serial Network mints for
  // this plant (engine-independent dispatch order; see kForgedCreator).
  shard_of(dest).schedule_forged(now() + delay,
                                 EventKey{kForgedCreator, forged_seq_++}, dest,
                                 msg);
}

NetworkStats ShardWorld::net_stats() const {
  NetworkStats total = world_stats_;
  for (const auto& shard : shards_) total += shard->stats();
  return total;
}

std::uint64_t ShardWorld::dispatched() const {
  std::uint64_t total = base_dispatched_;
  for (const auto& shard : shards_) total += shard->dispatched();
  return total;
}

Network& ShardWorld::network() {
  SSBFT_EXPECTS(!"network() is a serial-engine surface; sharded runs have no "
                 "single Network (taps/oracles/chaos run serial)");
  std::abort();
}

EventQueue& ShardWorld::queue() {
  SSBFT_EXPECTS(!"queue() is a serial-engine surface; use schedule()/"
                 "dispatched() on WorldBase");
  std::abort();
}

void ShardWorld::plan_next_window() {
  if (window_inclusive_) {
    // The inclusive pass at the target just ran: nothing at or before the
    // target can remain (cross-shard effects of the pass land strictly
    // after it).
    stop_ = true;
    return;
  }
  // Window start: where the last window ended, skipped ahead to the
  // earliest pending event (identical on every engine — pure queue state).
  RealTime start = window_end_;
  RealTime earliest = RealTime::max();
  for (const auto& shard : shards_) {
    if (!shard->queue().empty()) {
      earliest = std::min(earliest, shard->queue().next_time());
    }
    // Wheel timers are pending work too: a timer-only shard must not be
    // fast-forwarded past (the bound is conservative — a stale-low wheel
    // lower bound only costs an extra empty window, never correctness).
    earliest = std::min(earliest, shard->next_timer_due());
  }
  if (quiescence_ && earliest > target_) {
    stop_ = true;  // nothing left at or before the deadline
    return;
  }
  if (cut_ && earliest >= target_) {
    stop_ = true;  // run_before: everything strictly before the cut is done
    return;
  }
  start = std::max(start, std::min(earliest, target_));
  if (start >= target_) {
    if (cut_) {
      // A stale-low wheel bound got us here with the exclusive windows
      // already run to the cut: nothing < target_ can remain.
      stop_ = true;
      return;
    }
    // Zero-width inclusive pass: events AT the target. Anything they cause
    // cross-shard lands at > target (λ > 0), so one pass suffices.
    window_end_ = target_;
    window_inclusive_ = true;
  } else {
    window_end_ = std::min(start + lookahead_, target_);
    window_inclusive_ = false;
  }
}

void ShardWorld::run_windows(RealTime target, bool quiescence) {
  target_ = target;
  quiescence_ = quiescence;
  stop_ = false;
  window_end_ = global_now_;
  window_inclusive_ = false;

  if (shards_.size() == 1) {
    // One shard: no cross-shard traffic, the window machinery is identity.
    // The current-shard marker still matters: now() must track the queue's
    // advancing clock during dispatch, exactly as in the threaded path.
    tl_current_shard_ = shards_[0].get();
    shards_[0]->process_until(target, /*inclusive=*/!cut_);
    tl_current_shard_ = nullptr;
  } else {
    plan_next_window();  // single-threaded: workers not yet running
    if (!stop_) {
      std::barrier processed(std::ptrdiff_t(shards_.size()));
      std::barrier planned(std::ptrdiff_t(shards_.size()),
                           [this]() noexcept { plan_next_window(); });
      const auto worker = [&](Shard* shard) {
        while (true) {
          tl_current_shard_ = shard;
          shard->process_until(window_end_, window_inclusive_);
          tl_current_shard_ = nullptr;
          processed.arrive_and_wait();  // all outboxes for this window final
          shard->drain_inboxes();
          planned.arrive_and_wait();    // completion plans the next window
          if (stop_) return;
        }
      };
      // Workers are spawned per run_* call (the caller's thread drives
      // shard 0). Fine for run()-shaped use; harness loops that step a
      // sharded world in many tiny increments would amortize better with a
      // persistent parked pool — a follow-up if that pattern appears.
      std::vector<std::thread> pool;
      pool.reserve(shards_.size() - 1);
      for (std::size_t s = 1; s < shards_.size(); ++s) {
        pool.emplace_back(worker, shards_[s].get());
      }
      worker(shards_[0].get());
      for (auto& t : pool) t.join();
    }
    // No mailbox can be non-empty here: every worker's last actions are
    // process → barrier → drain → barrier, so the final pass's cross-shard
    // deliveries (all strictly after the target) are already parked in
    // their destination queues for the next run_* call.
  }

  if (!quiescence && !cut_) {
    // Serial run_until semantics: every clock reads `target` afterwards.
    for (auto& shard : shards_) shard->queue().run_until(target);
    global_now_ = target;
  } else {
    // Quiescence and cut mode rest at the last dispatch: a migration cut
    // must not advance any clock to the cut instant (the adopting engine
    // owns it), and the exported `now` is then ≤ every pending `when`.
    RealTime last = global_now_;
    for (const auto& shard : shards_) {
      last = std::max(last, shard->queue().now());
    }
    global_now_ = last;
  }
}

void ShardWorld::run_before(RealTime t) {
  SSBFT_EXPECTS(!exported_);
  if (t <= global_now_) return;
  cut_ = true;
  run_windows(t, /*quiescence=*/false);
  cut_ = false;
}

void ShardWorld::enable_handoff_export() {
  for (auto& shard : shards_) shard->enable_handoff_export();
}

WorldMigration ShardWorld::export_migration() {
  // One-shot, mirroring World::export_migration: the per-shard slabs seal
  // themselves, and the run/schedule guards refuse further activity.
  SSBFT_EXPECTS(!exported_);
  exported_ = true;
  WorldMigration m;
  m.now = global_now_;
  m.dispatched = dispatched();
  m.world_seq = world_seq_;
  m.forged_seq = forged_seq_;
  m.stats = net_stats();
  m.world_rng = rng_;
  for (auto& shard : shards_) shard->export_deliveries(m.deliveries);
  // Timer slabs are disjoint by construction (partitioned import + strided
  // append), so the merged snapshot is the concatenation of the per-shard
  // exports with an elementwise-max generation map: for any index, at most
  // one shard ever advanced its ticket past the pre-split value.
  for (const auto& shard : shards_) {
    std::vector<TimerWheel::ExportedRecord> records;
    std::vector<std::uint32_t> generations;
    shard->export_timers(records, generations);
    m.timers.insert(m.timers.end(), std::make_move_iterator(records.begin()),
                    std::make_move_iterator(records.end()));
    if (generations.size() > m.timer_generations.size()) {
      m.timer_generations.resize(generations.size(), 0);
    }
    for (std::size_t i = 0; i < generations.size(); ++i) {
      m.timer_generations[i] =
          std::max(m.timer_generations[i], generations[i]);
    }
  }
  m.nodes.resize(config_.n);
  for (NodeId id = 0; id < config_.n; ++id) {
    shard_of(id).export_node(id, m.nodes[id]);
  }
  // World-level actions are the orchestrator's to carry (DutyWorld keeps
  // the originals and re-registers extractable wrappers per segment);
  // nothing here can peel a raw closure back out of a queue.
  return m;
}

void ShardWorld::run_until(RealTime t) {
  SSBFT_EXPECTS(!exported_);
  if (t < global_now_) return;
  run_windows(t, /*quiescence=*/false);
}

void ShardWorld::run_to_quiescence(RealTime hard_deadline) {
  SSBFT_EXPECTS(!exported_);
  if (hard_deadline < global_now_) return;
  run_windows(hard_deadline, /*quiescence=*/true);
}

}  // namespace ssbft
