#include "sim/shard_world.hpp"

#include <algorithm>
#include <barrier>
#include <cstdlib>
#include <limits>
#include <thread>
#include <utility>

#include "harness/trace.hpp"
#include "util/assert.hpp"

namespace ssbft {

thread_local Shard* ShardWorld::tl_current_shard_ = nullptr;
thread_local EventQueue* ShardWorld::tl_current_queue_ = nullptr;
thread_local ShardWorld::ExecContext* ShardWorld::tl_exec_ = nullptr;

std::uint32_t ShardWorld::effective_shards(const WorldConfig& config) {
  WorldConfig resolved = config;
  resolved.resolve_delay_models();
  std::uint32_t shards = std::max(1u, resolved.shards);
  shards = std::min(shards, resolved.n);
  // λ = 0 means no conservative window can exist: degrade to one shard
  // (serial semantics), never to wrongness.
  if (resolved.lookahead() <= Duration::zero()) shards = 1;
  return shards;
}

ShardWorld::ShardWorld(WorldConfig config)
    : WorldBase(config), rng_(config_.seed), logger_(config_.log_level) {
  lookahead_ = config_.lookahead();
  const std::uint32_t shards = effective_shards(config_);
  SSBFT_EXPECTS(shards == 1 || lookahead_ > Duration::zero());
  sched_ = shards > 1 ? config_.shard_sched : ShardSched::kStatic;
  cost_tracking_ = sched_ != ShardSched::kStatic;
  // A repartition tears shards down through the migration machinery, so the
  // adaptive policies need every in-flight delivery exportable from the
  // first send on.
  track_handoff_ = cost_tracking_;
  node_cost_.assign(config_.n, 0);
  node_cost_base_.assign(config_.n, 0);
  std::vector<NodeId> bounds(shards + 1);
  for (std::uint32_t s = 0; s <= shards; ++s) {
    bounds[s] = NodeId(std::size_t(s) * config_.n / shards);
  }
  make_shards(bounds);
}

ShardWorld::ShardWorld(WorldConfig config, WorldMigration&& migration,
                       bool handoff_export)
    : ShardWorld(std::move(config)) {
  SSBFT_EXPECTS(migration.nodes.size() == config_.n);
  // Delivery tracking must be live BEFORE the migrated in-flight set
  // re-materializes below, or those deliveries would be lost to the next
  // cut's export.
  if (handoff_export) enable_handoff_export();
  // Adaptive policies: the migrated in-flight set is the only load signal
  // available at adoption time, and it is exactly the post-chaos hot spot —
  // rebuild the (still empty) shards on boundaries balancing deliveries
  // plus timers per node instead of the blind equal split.
  if (cost_tracking_ && shards_.size() > 1) {
    std::vector<std::uint64_t> weight(config_.n, 1);
    for (const Network::PendingDelivery& p : migration.deliveries) {
      weight[p.dest] += 1;
    }
    for (const TimerWheel::ExportedRecord& r : migration.timers) {
      weight[r.node] += 1;
    }
    make_shards(balanced_boundaries(weight, std::uint32_t(shards_.size())));
  }
  // Counters and stream positions continue where the serial prefix stopped:
  // the suffix must mint the exact keys and draws an uninterrupted serial
  // run would have.
  global_now_ = migration.now;
  started_ = true;
  world_seq_ = migration.world_seq;
  forged_seq_ = migration.forged_seq;
  world_stats_ = migration.stats;
  base_dispatched_ = migration.dispatched;
  rng_ = migration.world_rng;
  for (NodeId id = 0; id < config_.n; ++id) {
    shard_of(id).adopt_node(id, std::move(migration.nodes[id]));
  }
  for (auto& shard : shards_) {
    shard->import_timers(migration.timers, migration.timer_generations,
                         migration.now);
  }
  // In-flight deliveries and pending workload actions park straight in
  // their owner's queue with their original keys. A chaos delivery may land
  // well inside the first windows — that is fine: the conservative-window
  // argument constrains only traffic GENERATED during a window, and the
  // post-cut network is non-faulty (every new send respects λ).
  for (const Network::PendingDelivery& p : migration.deliveries) {
    if (p.forged) {
      shard_of(p.dest).schedule_forged(p.when, p.key, p.dest, p.msg);
    } else {
      shard_of(p.dest).schedule_delivery(p.when, p.key, p.dest, p.msg);
    }
  }
  for (WorldMigration::PendingAction& a : migration.actions) {
    schedule_keyed(a.when, a.key, a.target, std::move(a.action));
  }
}

ShardWorld::~ShardWorld() = default;

void ShardWorld::make_shards(const std::vector<NodeId>& bounds) {
  const std::uint32_t shards = std::uint32_t(bounds.size() - 1);
  SSBFT_EXPECTS(bounds.front() == 0 && bounds.back() == config_.n);
  shards_.clear();
  shards_.reserve(shards);
  shard_index_.assign(config_.n, 0);
  for (std::uint32_t s = 0; s < shards; ++s) {
    const NodeId first = bounds[s];
    const NodeId end = bounds[s + 1];
    SSBFT_EXPECTS(first < end);
    for (NodeId id = first; id < end; ++id) shard_index_[id] = s;
    shards_.push_back(std::make_unique<Shard>(*this, s, shards, first, end));
    if (track_handoff_) shards_.back()->enable_handoff_export();
  }
  if (sched_ == ShardSched::kSteal) {
    exec_.clear();
    exec_.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
      exec_.push_back(
          std::make_unique<ExecContext>(config_.log_level, shards));
    }
  }
  steal_cursor_ = std::vector<std::atomic<std::uint32_t>>(shards);
  lax_frontier_ = std::vector<std::atomic<std::int64_t>>(shards);
  last_shard_dispatched_.assign(shards, 0);
}

std::vector<NodeId> ShardWorld::balanced_boundaries(
    const std::vector<std::uint64_t>& weight, std::uint32_t shards) {
  const std::uint32_t n = std::uint32_t(weight.size());
  SSBFT_EXPECTS(shards >= 1 && shards <= n);
  std::uint64_t total = 0;
  for (const std::uint64_t w : weight) total += w;
  std::vector<NodeId> bounds(shards + 1);
  bounds[0] = 0;
  bounds[shards] = NodeId(n);
  // Greedy sweep: extend shard s−1's block while the running prefix's
  // midpoint stays at or below the ideal s/shards split of the total —
  // i.e. take node `id` iff acc + w[id]/2 ≤ s·total/shards, in overflow-
  // safe integer form. Clamped so every block keeps at least one node.
  std::uint64_t acc = 0;
  NodeId id = 0;
  for (std::uint32_t s = 1; s < shards; ++s) {
    const NodeId min_id = bounds[s - 1] + 1;
    const NodeId max_id = NodeId(n - (shards - s));
    while (id < min_id ||
           (id < max_id &&
            (2 * acc + weight[id]) * shards <= 2 * total * s)) {
      acc += weight[id];
      ++id;
    }
    bounds[s] = id;
  }
  return bounds;
}

void ShardWorld::set_behavior(NodeId id,
                              std::unique_ptr<NodeBehavior> behavior) {
  SSBFT_EXPECTS(id < config_.n);
  shard_of(id).set_behavior(id, std::move(behavior), started_);
}

NodeBehavior* ShardWorld::behavior(NodeId id) {
  SSBFT_EXPECTS(id < config_.n);
  return shard_of(id).behavior(id);
}

void ShardWorld::start() {
  started_ = true;
  const trace::Scope traced(config_.tracer, &global_now_);
  // Same node order as the serial World::start — on_start handlers may send
  // immediately, and those sends must mint the same keys and stream draws.
  for (NodeId id = 0; id < config_.n; ++id) shard_of(id).start_node(id);
}

RealTime ShardWorld::now() const {
  // During a steal window "now" is the claimed node queue's clock; during
  // any other dispatch it is the executing shard's queue clock.
  if (const EventQueue* q = tl_current_queue_) return q->now();
  if (const Shard* shard = tl_current_shard_) return shard->queue().now();
  return global_now_;
}

LocalTime ShardWorld::local_now(NodeId id) const {
  SSBFT_EXPECTS(id < config_.n);
  return const_cast<ShardWorld*>(this)->shard_of(id).clock(id).local_at(now());
}

RealTime ShardWorld::real_at(NodeId id, LocalTime tau) const {
  SSBFT_EXPECTS(id < config_.n);
  return const_cast<ShardWorld*>(this)->shard_of(id).clock(id).real_at(tau);
}

DriftingClock& ShardWorld::clock(NodeId id) {
  SSBFT_EXPECTS(id < config_.n);
  return shard_of(id).clock(id);
}

void ShardWorld::scramble_node(NodeId id) {
  SSBFT_EXPECTS(id < config_.n);
  shard_of(id).scramble_node(id);
}

void ShardWorld::schedule(RealTime when, NodeId target,
                          std::function<void()> action) {
  schedule_keyed(when, next_world_key(), target, std::move(action));
}

void ShardWorld::schedule_keyed(RealTime when, EventKey key, NodeId target,
                                std::function<void()> action) {
  SSBFT_EXPECTS(target < config_.n);
  SSBFT_EXPECTS(tl_current_shard_ == nullptr);  // serial phases only
  SSBFT_EXPECTS(!exported_);
  if (cost_tracking_) {
    // Adaptive policies park an extractable wrapper so a repartition can
    // re-register the action on the rebuilt shards.
    schedule_world_action(when, key, target, std::move(action));
  } else {
    shard_of(target).schedule_action(when, key, target, std::move(action));
  }
}

void ShardWorld::schedule_world_action(RealTime when, EventKey key,
                                       NodeId target,
                                       std::function<void()> action) {
  const std::uint64_t seq = key.seq;
  {
    std::lock_guard<std::mutex> lock(actions_mutex_);
    SSBFT_EXPECTS(actions_.find(seq) == actions_.end());
    actions_[seq] =
        WorldMigration::PendingAction{when, key, target, std::move(action)};
  }
  shard_of(target).schedule_action(when, key, target,
                                   [this, seq] { fire_action(seq); });
}

void ShardWorld::fire_action(std::uint64_t seq) {
  std::function<void()> action;
  {
    std::lock_guard<std::mutex> lock(actions_mutex_);
    const auto it = actions_.find(seq);
    SSBFT_ASSERT(it != actions_.end());
    action = std::move(it->second.action);
    actions_.erase(it);
  }
  action();
}

void ShardWorld::inject_raw(NodeId dest, WireMessage msg, Duration delay) {
  SSBFT_EXPECTS(dest < config_.n);
  SSBFT_EXPECTS(tl_current_shard_ == nullptr);  // serial phases only
  SSBFT_EXPECTS(!exported_);
  ++world_stats_.forged;
  // Forged channel: the same content-based key the serial Network mints for
  // this plant (engine-independent dispatch order; see kForgedCreator).
  shard_of(dest).schedule_forged(now() + delay,
                                 EventKey{kForgedCreator, forged_seq_++}, dest,
                                 std::move(msg));
}

NetworkStats ShardWorld::net_stats() const {
  NetworkStats total = world_stats_;
  for (const auto& shard : shards_) total += shard->stats();
  return total;
}

std::uint64_t ShardWorld::dispatched() const {
  std::uint64_t total = base_dispatched_;
  for (const auto& shard : shards_) total += shard->dispatched();
  return total;
}

Network& ShardWorld::network() {
  SSBFT_EXPECTS(!"network() is a serial-engine surface; sharded runs have no "
                 "single Network (taps/oracles/chaos run serial)");
  std::abort();
}

EventQueue& ShardWorld::queue() {
  SSBFT_EXPECTS(!"queue() is a serial-engine surface; use schedule()/"
                 "dispatched() on WorldBase");
  std::abort();
}

void ShardWorld::account_window() {
  // Owner-attributed view: a node's queue stays resident on its owning
  // shard even when a thief worker runs it, so each shard's dispatched()
  // delta counts the work its OWN nodes consumed this window regardless of
  // which worker executed it. This is the load signal boundaries can act
  // on — moving nodes changes owner load, not worker luck.
  std::uint64_t owner_max = 0;
  std::uint64_t owner_min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t owner_total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::uint64_t d = shards_[s]->dispatched();
    const std::uint64_t e = d - last_shard_dispatched_[s];
    last_shard_dispatched_[s] = d;
    owner_max = std::max(owner_max, e);
    owner_min = std::min(owner_min, e);
    owner_total += e;
  }
  std::uint64_t max_e = owner_max;
  std::uint64_t min_e = owner_min;
  std::uint64_t total = owner_total;
  if (sched_ == ShardSched::kSteal) {
    // Executor view: steal windows spread one shard's nodes across many
    // workers, so per-WORKER dispatches measure what stealing achieved.
    // Fold the exec-context counters into the world totals while we are
    // single-threaded at the barrier.
    max_e = 0;
    min_e = std::numeric_limits<std::uint64_t>::max();
    total = 0;
    for (auto& exec : exec_) {
      const std::uint64_t e = exec->window_events;
      exec->window_events = 0;
      world_stats_ += exec->stats;
      exec->stats = NetworkStats{};
      sched_stats_.steals += exec->steals;
      sched_stats_.stolen_events += exec->stolen_events;
      exec->steals = 0;
      exec->stolen_events = 0;
      max_e = std::max(max_e, e);
      min_e = std::min(min_e, e);
      total += e;
    }
  }
  ++sched_stats_.windows;
  if (total == 0 && owner_total == 0) {
    return;  // empty windows say nothing about balance
  }
  const double imbalance =
      double(max_e) / double(std::max<std::uint64_t>(min_e, 1));
  const double owner_imbalance =
      double(owner_max) / double(std::max<std::uint64_t>(owner_min, 1));
  ++sched_stats_.measured_windows;
  sched_stats_.window_events += std::max(total, owner_total);
  sched_stats_.imbalance_max = std::max(sched_stats_.imbalance_max, imbalance);
  sched_stats_.imbalance_sum += imbalance;
  sched_stats_.owner_imbalance_max =
      std::max(sched_stats_.owner_imbalance_max, owner_imbalance);
  sched_stats_.owner_imbalance_sum += owner_imbalance;
  // The repartition hysteresis feeds on the OWNER view: under kSteal the
  // thieves equalize the executor counts, which used to mask exactly the
  // skew the repartitioner exists to remove — heavy stealing looked like
  // balance, so the boundaries never moved and every window paid the steal
  // overhead again.
  hysteresis_sum_ += owner_imbalance;
  ++hysteresis_windows_;
#if SSBFT_TRACING
  if (config_.tracer != nullptr) {
    // Retroactive window span: emitted once per accounted window, from the
    // single-threaded barrier-completion step. A keyed buffer (not the
    // thread buffer): completion runs on whichever worker arrives last, and
    // the merge order must not depend on that race.
    TraceBuffer* buf = config_.tracer->keyed_buffer(kLaneWindows);
    const std::int64_t events = std::int64_t(std::max(total, owner_total));
    buf->push(TraceRecord{window_start_.ns(), 0, events, kLaneWindows,
                          TraceName::kWindow, TraceKind::kSpanBegin,
                          TraceLayer::kEngine});
    buf->push(TraceRecord{window_end_.ns(), 0, events, kLaneWindows,
                          TraceName::kWindow, TraceKind::kSpanEnd,
                          TraceLayer::kEngine});
    buf->push(TraceRecord{window_end_.ns(), 0, events, kLaneWindows,
                          TraceName::kWindowEvents, TraceKind::kCounter,
                          TraceLayer::kEngine});
    buf->push(TraceRecord{window_end_.ns(), 0,
                          std::int64_t(owner_imbalance * 1000.0), kLaneWindows,
                          TraceName::kOwnerImbalance, TraceKind::kCounter,
                          TraceLayer::kEngine});
  }
#endif
}

void ShardWorld::repartition() {
  ++sched_stats_.repartitions;
#if SSBFT_TRACING
  if (config_.tracer != nullptr) {
    // Keyed buffer: plan-time work runs on the last worker to arrive.
    config_.tracer->keyed_buffer(kLaneWindows)->push(TraceRecord{
        window_end_.ns(), 0, std::int64_t(shards_.size()), kLaneWindows,
        TraceName::kRepartition, TraceKind::kInstant, TraceLayer::kEngine});
  }
#endif
  // Tear the live shards down exactly like an engine handoff, except the
  // snapshot never leaves this engine: fold counters, export deliveries /
  // timers / nodes, rebuild on cost-balanced boundaries, re-adopt.
  std::vector<Network::PendingDelivery> deliveries;
  std::vector<TimerWheel::ExportedRecord> timers;
  std::vector<std::uint32_t> generations;
  for (auto& shard : shards_) {
    world_stats_ += shard->stats();
    base_dispatched_ += shard->dispatched();
    shard->export_deliveries(deliveries);
    std::vector<TimerWheel::ExportedRecord> records;
    std::vector<std::uint32_t> gens;
    shard->export_timers(records, gens);
    timers.insert(timers.end(), std::make_move_iterator(records.begin()),
                  std::make_move_iterator(records.end()));
    if (gens.size() > generations.size()) generations.resize(gens.size(), 0);
    for (std::size_t i = 0; i < gens.size(); ++i) {
      generations[i] = std::max(generations[i], gens[i]);
    }
  }
  std::vector<WorldMigration::NodeState> nodes(config_.n);
  for (NodeId id = 0; id < config_.n; ++id) {
    shard_of(id).export_node(id, nodes[id]);
  }
  // Weights: dispatches charged per node since the LAST repartition — the
  // recent-load signal — plus one so idle nodes still spread evenly.
  std::vector<std::uint64_t> weight(config_.n, 1);
  for (NodeId id = 0; id < config_.n; ++id) {
    weight[id] += node_cost_[id] - node_cost_base_[id];
  }
  node_cost_base_ = node_cost_;
  const std::uint32_t shards = std::uint32_t(shards_.size());
  make_shards(balanced_boundaries(weight, shards));
  for (NodeId id = 0; id < config_.n; ++id) {
    shard_of(id).adopt_node(id, std::move(nodes[id]));
  }
  for (auto& shard : shards_) {
    // Every surviving record fires at or after the window edge we are
    // parked on (in-window timers were pumped and dispatched), so the edge
    // is a valid wheel epoch and keeps pump bounds monotone.
    shard->import_timers(timers, generations, window_end_);
  }
  for (const Network::PendingDelivery& p : deliveries) {
    if (p.forged) {
      shard_of(p.dest).schedule_forged(p.when, p.key, p.dest, p.msg);
    } else {
      shard_of(p.dest).schedule_delivery(p.when, p.key, p.dest, p.msg);
    }
  }
  // Pending world actions re-register under their ORIGINAL keys — the
  // registry holds the real closures, the queues only held wrappers.
  {
    std::lock_guard<std::mutex> lock(actions_mutex_);
    for (const auto& [seq, a] : actions_) {
      const std::uint64_t s = seq;
      shard_of(a.target).schedule_action(a.when, a.key, a.target,
                                         [this, s] { fire_action(s); });
    }
  }
}

void ShardWorld::plan_next_window() {
  if (in_window_) {
    const bool final_pass = window_inclusive_;
    account_window();
    in_window_ = false;
    // Hysteresis-gated: only consider moving boundaries when the recent
    // mean imbalance says the static blocks are paying for it, and never
    // bother right before the run stops.
    if (!final_pass && sched_ != ShardSched::kStatic && shards_.size() > 1 &&
        hysteresis_windows_ >= kRepartitionWindows) {
      const double mean = hysteresis_sum_ / double(hysteresis_windows_);
      hysteresis_sum_ = 0.0;
      hysteresis_windows_ = 0;
      if (mean >= kRepartitionThreshold) repartition();
    }
  }
  if (window_inclusive_) {
    // The inclusive pass at the target just ran: nothing at or before the
    // target can remain (cross-shard effects of the pass land strictly
    // after it).
    stop_ = true;
    return;
  }
  // Window start: where the last window ended, skipped ahead to the
  // earliest pending event (identical on every engine — pure queue state).
  RealTime start = window_end_;
  RealTime earliest = RealTime::max();
  for (const auto& shard : shards_) {
    earliest = std::min(earliest, shard->next_pending_time());
    // Wheel timers are pending work too: a timer-only shard must not be
    // fast-forwarded past (the bound is conservative — a stale-low wheel
    // lower bound only costs an extra empty window, never correctness).
    earliest = std::min(earliest, shard->next_timer_due());
  }
  if (quiescence_ && earliest > target_) {
    stop_ = true;  // nothing left at or before the deadline
    return;
  }
  if (cut_ && earliest >= target_) {
    stop_ = true;  // run_before: everything strictly before the cut is done
    return;
  }
  start = std::max(start, std::min(earliest, target_));
  if (start >= target_) {
    if (cut_) {
      // A stale-low wheel bound got us here with the exclusive windows
      // already run to the cut: nothing < target_ can remain.
      stop_ = true;
      return;
    }
    // Zero-width inclusive pass: events AT the target. Anything they cause
    // cross-shard lands at > target (λ > 0), so one pass suffices.
    window_end_ = target_;
    window_inclusive_ = true;
  } else {
    // Lax windows are k·λ wide: the slack barrier inside them recovers the
    // λ-granular safety, so wider windows just mean fewer full barriers.
    const Duration width =
        sched_ == ShardSched::kLax ? lookahead_ * kLaxFactor : lookahead_;
    window_end_ = std::min(start + width, target_);
    window_inclusive_ = false;
  }
  window_start_ = start;
  in_window_ = true;
  if (sched_ == ShardSched::kSteal) {
    for (auto& shard : shards_) {
      shard->build_steal_items(window_end_, window_inclusive_);
    }
    for (auto& cursor : steal_cursor_) {
      cursor.store(0, std::memory_order_relaxed);
    }
  } else if (sched_ == ShardSched::kLax && !window_inclusive_) {
    for (auto& frontier : lax_frontier_) {
      frontier.store(window_start_.ns(), std::memory_order_relaxed);
    }
  }
}

void ShardWorld::run_steal_window(std::uint32_t worker) {
  ExecContext* exec = exec_[worker].get();
  tl_exec_ = exec;
  const std::uint32_t shards = std::uint32_t(shards_.size());
  std::uint64_t events = 0;
  while (true) {
    // Own shard's items first (cache-warm, usually uncontended); once they
    // are gone, steal from whichever shard has the most left. The cursor
    // race is benign: an overshot fetch_add just retries the scan.
    std::uint32_t victim = shards;
    if (steal_cursor_[worker].load(std::memory_order_relaxed) <
        shards_[worker]->steal_items().size()) {
      victim = worker;
    } else {
      std::size_t best_left = 0;
      for (std::uint32_t s = 0; s < shards; ++s) {
        const std::size_t size = shards_[s]->steal_items().size();
        const std::uint32_t cur =
            steal_cursor_[s].load(std::memory_order_relaxed);
        const std::size_t left = cur < size ? size - cur : 0;
        if (left > best_left) {
          best_left = left;
          victim = s;
        }
      }
      if (victim == shards) break;  // every item everywhere is claimed
    }
    Shard* owner = shards_[victim].get();
    const std::uint32_t idx =
        steal_cursor_[victim].fetch_add(1, std::memory_order_relaxed);
    if (idx >= owner->steal_items().size()) continue;
    const NodeId node = owner->steal_items()[idx];
    // Claiming a node claims its whole window batch: the node queue, its
    // in-window self-timers, everything — per-node key order preserved.
    tl_current_shard_ = owner;
    tl_current_queue_ = &owner->node_queue(node);
    const std::uint64_t ran =
        owner->run_node_window(node, window_end_, window_inclusive_);
    tl_current_queue_ = nullptr;
    tl_current_shard_ = nullptr;
    events += ran;
    if (victim != worker) {
      ++exec->steals;
      exec->stolen_events += ran;
#if SSBFT_TRACING
      if (config_.tracer != nullptr) {
        config_.tracer->emit(TraceRecord{
            window_start_.ns(), node, std::int64_t(ran),
            kLaneWorker0 + worker, TraceName::kSteal, TraceKind::kInstant,
            TraceLayer::kEngine});
      }
#endif
    }
  }
  exec->window_events += events;
  tl_exec_ = nullptr;
}

void ShardWorld::lax_run(Shard* shard) {
  const std::uint32_t self = shard->index();
  const std::uint32_t shards = std::uint32_t(shards_.size());
  const RealTime end = window_end_;
  std::int64_t mine = lax_frontier_[self].load(std::memory_order_relaxed);
  // Slack barrier: a shard may dispatch up to min(peer frontiers) + λ —
  // nothing a peer has not yet executed can land before that. The drain
  // happens AFTER the frontier loads: any message a peer pushed after we
  // loaded its frontier F carries when ≥ F + λ ≥ horizon, so it cannot be
  // needed this step; anything needed is already in the inbox.
  while (RealTime{mine} < end) {
    std::int64_t peer_min = std::numeric_limits<std::int64_t>::max();
    for (std::uint32_t s = 0; s < shards; ++s) {
      if (s == self) continue;
      peer_min = std::min(peer_min,
                          lax_frontier_[s].load(std::memory_order_acquire));
    }
    const RealTime horizon = std::min(end, RealTime{peer_min} + lookahead_);
    if (horizon <= RealTime{mine}) {
      // We ARE the frontier (or tied): wait for a laggard to publish.
      std::this_thread::yield();
      continue;
    }
    shard->drain_lax_inbox();
    shard->process_until(horizon, /*inclusive=*/false);
    mine = horizon.ns();
    lax_frontier_[self].store(mine, std::memory_order_release);
#if SSBFT_TRACING
    if (config_.tracer != nullptr) {
      config_.tracer->emit(TraceRecord{mine, 0, 0, kLaneWorker0 + self,
                                       TraceName::kLaxPublish,
                                       TraceKind::kInstant,
                                       TraceLayer::kEngine});
    }
#endif
  }
}

void ShardWorld::run_windows(RealTime target, bool quiescence) {
  target_ = target;
  quiescence_ = quiescence;
  stop_ = false;
  window_end_ = global_now_;
  window_inclusive_ = false;
  in_window_ = false;

  if (shards_.size() == 1) {
    // One shard: no cross-shard traffic, the window machinery is identity.
    // The current-shard marker still matters: now() must track the queue's
    // advancing clock during dispatch, exactly as in the threaded path.
    tl_current_shard_ = shards_[0].get();
    shards_[0]->process_until(target, /*inclusive=*/!cut_);
    tl_current_shard_ = nullptr;
  } else {
    plan_next_window();  // single-threaded: workers not yet running
    if (!stop_) {
      std::barrier processed(std::ptrdiff_t(shards_.size()));
      std::barrier planned(std::ptrdiff_t(shards_.size()),
                           [this]() noexcept { plan_next_window(); });
      // Workers go by INDEX, not pointer: a repartition at the planning
      // barrier replaces the Shard objects, so each iteration re-fetches.
      const auto worker = [&](std::uint32_t w) {
        while (true) {
          Shard* shard = shards_[w].get();
          if (sched_ == ShardSched::kSteal) {
            run_steal_window(w);
          } else if (sched_ == ShardSched::kLax && !window_inclusive_) {
            tl_current_shard_ = shard;
            lax_run(shard);
            tl_current_shard_ = nullptr;
          } else {
            tl_current_shard_ = shard;
            shard->process_until(window_end_, window_inclusive_);
            tl_current_shard_ = nullptr;
          }
          processed.arrive_and_wait();  // all outboxes for this window final
          shards_[w]->drain_inboxes();
          planned.arrive_and_wait();    // completion plans the next window
          if (stop_) return;
        }
      };
      // Workers are spawned per run_* call (the caller's thread drives
      // shard 0). Fine for run()-shaped use; harness loops that step a
      // sharded world in many tiny increments would amortize better with a
      // persistent parked pool — a follow-up if that pattern appears.
      std::vector<std::thread> pool;
      pool.reserve(shards_.size() - 1);
      for (std::uint32_t s = 1; s < std::uint32_t(shards_.size()); ++s) {
        pool.emplace_back(worker, s);
      }
      worker(0);
      for (auto& t : pool) t.join();
    }
    // No mailbox can be non-empty here: every worker's last actions are
    // process → barrier → drain → barrier, so the final pass's cross-shard
    // deliveries (all strictly after the target) are already parked in
    // their destination queues for the next run_* call.
  }

  if (!quiescence && !cut_) {
    // Serial run_until semantics: every clock reads `target` afterwards.
    for (auto& shard : shards_) shard->advance_queues(target);
    global_now_ = target;
  } else {
    // Quiescence and cut mode rest at the last dispatch: a migration cut
    // must not advance any clock to the cut instant (the adopting engine
    // owns it), and the exported `now` is then ≤ every pending `when`.
    RealTime last = global_now_;
    for (const auto& shard : shards_) {
      last = std::max(last, shard->last_queue_now());
    }
    global_now_ = last;
  }
}

void ShardWorld::run_before(RealTime t) {
  SSBFT_EXPECTS(!exported_);
  if (t <= global_now_) return;
  cut_ = true;
  run_windows(t, /*quiescence=*/false);
  cut_ = false;
}

void ShardWorld::enable_handoff_export() {
  track_handoff_ = true;
  for (auto& shard : shards_) shard->enable_handoff_export();
}

WorldMigration ShardWorld::export_migration() {
  // One-shot, mirroring World::export_migration: the per-shard slabs seal
  // themselves, and the run/schedule guards refuse further activity.
  SSBFT_EXPECTS(!exported_);
  exported_ = true;
  WorldMigration m;
  m.now = global_now_;
  m.dispatched = dispatched();
  m.world_seq = world_seq_;
  m.forged_seq = forged_seq_;
  m.stats = net_stats();
  m.world_rng = rng_;
  for (auto& shard : shards_) shard->export_deliveries(m.deliveries);
  // Timer slabs are disjoint by construction (partitioned import + strided
  // append), so the merged snapshot is the concatenation of the per-shard
  // exports with an elementwise-max generation map: for any index, at most
  // one shard ever advanced its ticket past the pre-split value.
  for (const auto& shard : shards_) {
    std::vector<TimerWheel::ExportedRecord> records;
    std::vector<std::uint32_t> generations;
    shard->export_timers(records, generations);
    m.timers.insert(m.timers.end(), std::make_move_iterator(records.begin()),
                    std::make_move_iterator(records.end()));
    if (generations.size() > m.timer_generations.size()) {
      m.timer_generations.resize(generations.size(), 0);
    }
    for (std::size_t i = 0; i < generations.size(); ++i) {
      m.timer_generations[i] =
          std::max(m.timer_generations[i], generations[i]);
    }
  }
  m.nodes.resize(config_.n);
  for (NodeId id = 0; id < config_.n; ++id) {
    shard_of(id).export_node(id, m.nodes[id]);
  }
  // World-level actions are the orchestrator's to carry (DutyWorld keeps
  // the originals and re-registers extractable wrappers per segment);
  // nothing here can peel a raw closure back out of a queue. The adaptive
  // registry's leftovers die with the queues for the same reason.
  return m;
}

void ShardWorld::run_until(RealTime t) {
  SSBFT_EXPECTS(!exported_);
  if (t < global_now_) return;
  run_windows(t, /*quiescence=*/false);
}

void ShardWorld::run_to_quiescence(RealTime hard_deadline) {
  SSBFT_EXPECTS(!exported_);
  if (hard_deadline < global_now_) return;
  run_windows(hard_deadline, /*quiescence=*/true);
}

}  // namespace ssbft
