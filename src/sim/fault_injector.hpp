// Transient-fault injector.
//
// The paper's fault model (§1–2) allows a transient event to leave *every*
// node with arbitrary variable values and the network with arbitrary
// messages in flight. This module realizes exactly that: it scrambles each
// behavior's state (via NodeBehavior::scramble) and plants a burst of
// spurious, possibly sender-forged messages on the wire. Self-stabilization
// experiments start from the state this produces.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/world.hpp"

namespace ssbft {

struct TransientFaultConfig {
  /// Spurious messages planted per node (destination-wise).
  std::uint32_t spurious_per_node = 32;
  /// In-flight spurious messages are delivered within this span.
  Duration spurious_span = milliseconds(5);
  /// Scramble node-local protocol state?
  bool scramble_state = true;
  /// Re-randomize clock offsets (lose any common time reference)?
  bool scramble_clocks = true;
  Duration max_clock_offset = seconds(1);
};

class FaultInjector {
 public:
  explicit FaultInjector(WorldBase& world) : world_(world) {}

  /// Unleash a transient fault *now*: forge messages, scramble state and
  /// clocks per `config`. Deterministic given the world's RNG state.
  void transient_fault(const TransientFaultConfig& config);

  /// A single spurious message with uniformly random fields (any kind, any
  /// claimed sender, any value/round) addressed to `dest`.
  WireMessage random_message(Rng& rng) const;

 private:
  WorldBase& world_;
};

}  // namespace ssbft
