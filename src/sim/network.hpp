// Bounded-delay authenticated message-passing network (paper Def. 2).
//
// While non-faulty, every message is delivered within δ and processed within
// π of arrival, and the sender identity is never tampered with. While
// *faulty* (the transient period before ι0), the network may drop, delay
// beyond δ, duplicate, or corrupt messages — and the fault injector may
// plant messages with forged senders, modelling arbitrary in-flight state.
//
// Bytes and tags: every send path signs at origin under the configured
// AuthKind (sim/auth.hpp) and every delivery closure verifies — a failed
// check counts as auth_rejected, taps kRejected, and never reaches the
// behavior. Message bodies ride as Payload handles (sim/payload.hpp): the
// process-wide refcounted pool owns all in-flight bytes, so unicast send,
// broadcast fan-out, chaos duplicates, and handoff-export snapshots all
// share one copy of a pooled body — copying a WireMessage bumps a refcount,
// it never copies payload bytes. See docs/wire-format.md.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/auth.hpp"
#include "sim/delay_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/payload.hpp"
#include "sim/tap.hpp"
#include "sim/topology.hpp"
#include "sim/wire.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ssbft {

/// Misbehaviour applied while the network is faulty.
struct ChaosConfig {
  double drop_prob = 0.4;
  double duplicate_prob = 0.15;
  double corrupt_prob = 0.25;
  /// Delay cap during chaos; may exceed δ arbitrarily. Zero ⇒ 20× the
  /// actual link-delay cap, chosen at construction and clamped to a
  /// positive floor — a zero-width link-delay model must not degenerate
  /// the chaos window to instantaneous delivery (chaos_delay_floor()).
  Duration max_delay = Duration::zero();
};

/// Smallest chaos delay cap the Network accepts: the fallback for
/// degenerate (all-zero) link-delay models, and the floor any configured
/// cap is clamped to.
[[nodiscard]] constexpr Duration chaos_delay_floor() { return microseconds(1); }

/// One chaos window [start, end): the network misbehaves for every message
/// SENT inside it. Misbehaviour is decided at send time — a chaos-delayed
/// copy may land well after the window closes (that is the point).
struct ChaosWindow {
  RealTime start{};
  RealTime end{};
};

struct NetworkStats {
  std::uint64_t sent = 0;        // send() calls admitted to the network
  std::uint64_t delivered = 0;   // copies handed to a destination
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t forged = 0;      // injected with a fake sender
  std::uint64_t auth_rejected = 0;  // failed the authenticator at delivery
  std::uint64_t payload_bytes = 0;  // per-copy payload bytes admitted
  /// Topology overlay counters (sim/topology.hpp) — deliveries that arrived
  /// via a relayed route, and copies put on the wire by relay duty. Both are
  /// zero under the flat topology and deliberately OUTSIDE run_digest: the
  /// digest's field list predates the overlay, and flat runs must keep
  /// digest parity with pre-topology builds.
  std::uint64_t topology_hops = 0;
  std::uint64_t fanout_msgs = 0;
  std::array<std::uint64_t, std::size_t(MsgKind::kNumKinds)> per_kind{};

  /// Field-wise sum — how the sharded engine aggregates per-shard counters.
  /// Lives next to the fields so a new counter cannot be added without the
  /// aggregation (and run_digest) coming into view.
  NetworkStats& operator+=(const NetworkStats& other) {
    sent += other.sent;
    delivered += other.delivered;
    dropped += other.dropped;
    duplicated += other.duplicated;
    corrupted += other.corrupted;
    forged += other.forged;
    auth_rejected += other.auth_rejected;
    payload_bytes += other.payload_bytes;
    topology_hops += other.topology_hops;
    fanout_msgs += other.fanout_msgs;
    for (std::size_t k = 0; k < per_kind.size(); ++k) {
      per_kind[k] += other.per_kind[k];
    }
    return *this;
  }
};

class Network {
 public:
  using DeliverFn = std::function<void(NodeId dest, const WireMessage&)>;

  /// `deliver` is invoked at the (real) instant the destination finishes
  /// processing the message — i.e. arrival + processing delay. All random
  /// draws (delays, chaos misbehaviour) come from per-SENDER streams derived
  /// from `(seed, sender)` — see derive_link_rng — so sampling depends only
  /// on each sender's own send history, never on the global interleaving;
  /// the sharded engine mirrors these streams shard-locally.
  Network(EventQueue& queue, std::uint32_t n, DelayModel link_delay,
          DelayModel proc_delay, ChaosConfig chaos, std::uint64_t seed,
          DeliverFn deliver, AuthKind auth = AuthKind::kNull);

  /// Authenticated send: `msg.sender` is overwritten with `from` and the
  /// tag stamped under the configured scheme. A pooled payload body is
  /// never copied — every delivery event (and any chaos duplicate) shares
  /// the sender's pool slot by reference.
  void send(NodeId from, NodeId dest, WireMessage msg);

  /// Broadcast to every node (self included). Flat topology: n unicast
  /// sends in destination order, all sharing the message's pooled payload
  /// slot — exactly the unicast path run n times, so seeded runs are
  /// bit-exact with it by construction. Non-flat topologies
  /// (set_topology) move the fan-out onto the dissemination overlay: the
  /// origin emits only its topology_origin_targets and receivers forward
  /// route-marked copies at delivery — every node still gets exactly one
  /// copy.
  void send_all(NodeId from, const WireMessage& msg);

  /// Install the dissemination overlay (sim/topology.hpp). Must precede
  /// all traffic; pass the resolved config. Default: flat (all-to-all).
  void set_topology(const TopologyConfig& topo) {
    SSBFT_EXPECTS(stats_.sent == 0 && stats_.forged == 0);
    topo_ = topo;
  }
  [[nodiscard]] const TopologyConfig& topology() const { return topo_; }

  /// Fault-injector backdoor: place a message (possibly with a forged
  /// sender) on the wire, delivered after `delay`. Scheduled under the
  /// reserved forged channel (kForgedCreator) with a per-network monotone
  /// seq, so forged deliveries have a content-based key — insertion order
  /// would be a determinism hazard on the sharded engines.
  void inject_raw(NodeId dest, WireMessage msg, Duration delay);

  /// The network behaves arbitrarily until `t`; from `t` on it is non-faulty
  /// (Def. 3 then starts its ∆net countdown). Sugar for one window
  /// [min(), t) — see set_faulty_windows for the recurring form.
  void set_faulty_until(RealTime t) {
    set_faulty_windows({ChaosWindow{RealTime::min(), t}});
  }
  [[nodiscard]] RealTime faulty_until() const {
    return windows_.empty() ? RealTime::min() : windows_.back().end;
  }

  /// Recurring chaos duty cycle: the network misbehaves inside each window
  /// and is non-faulty between them. Windows must be sorted, non-overlapping
  /// and non-empty (start < end). Replaces any previous schedule; the faulty
  /// test is a monotone cursor over the list, so lookups stay O(1) as
  /// simulation time advances.
  void set_faulty_windows(std::vector<ChaosWindow> windows) {
    for (std::size_t i = 0; i < windows.size(); ++i) {
      SSBFT_EXPECTS(windows[i].start < windows[i].end);
      SSBFT_EXPECTS(i == 0 || windows[i - 1].end <= windows[i].start);
    }
    windows_ = std::move(windows);
    window_cursor_ = 0;
  }

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Attach a wire-level observer (see sim/tap.hpp). Pass nullptr to detach.
  void set_tap(TapFn tap) { tap_ = std::move(tap); }

  /// Adversarial scheduling hook (src/check): when set, consulted per
  /// non-faulty message; a returned value replaces the sampled link+proc
  /// delay. The oracle must respect the model bound (≤ δ+π) for results to
  /// say anything about the paper's claims — the explorer clamps. Return
  /// nullopt to fall back to sampling. `seq` counts oracle consultations.
  using DelayOracle = std::function<std::optional<Duration>(
      NodeId from, NodeId dest, const WireMessage& msg, std::uint64_t seq)>;
  void set_delay_oracle(DelayOracle oracle) { oracle_ = std::move(oracle); }

  [[nodiscard]] Duration max_link_delay() const { return link_delay_.max; }
  [[nodiscard]] Duration max_proc_delay() const { return proc_delay_.max; }
  /// The resolved chaos delay cap (fallback applied, floor clamped).
  [[nodiscard]] Duration chaos_max_delay() const { return chaos_.max_delay; }

  /// Live slots in the process-wide payload pool (diagnostics/tests; zero
  /// after a run once every queue closure, snapshot, and probe let go).
  [[nodiscard]] std::uint32_t live_payloads() const {
    return payload_pool().live();
  }

  /// The delivery-side verifier (tests; key derives from the world seed).
  [[nodiscard]] const Authenticator& authenticator() const { return auth_; }

  // --- engine-migration surface (sim/duty_world.hpp) -----------------------

  /// One delivery event in flight: everything needed to re-materialize it —
  /// with its original key — in another engine's queue.
  struct PendingDelivery {
    RealTime when;
    EventKey key;
    NodeId dest = 0;
    WireMessage msg{};
    bool forged = false;  // inject_raw plant: no delivered/tap accounting
  };

  /// Track every scheduled delivery in a side slab so in-flight messages
  /// can be exported at an engine handoff (the chaos prefix runs serial,
  /// then hands its state to the windowed engine). Off by default — the
  /// registry costs one slab insert/erase per message — and must be enabled
  /// before any traffic. Tracked and untracked runs are bit-identical: the
  /// registry never changes keys, draws, stats, or tap order.
  void enable_handoff_export();
  /// The in-flight deliveries, in tracking-slab index order (stable and
  /// deterministic; dispatch order is the keys' business, not this list's).
  /// A reusable const observer — exporting is mark_exported()'s business.
  [[nodiscard]] std::vector<PendingDelivery> pending_deliveries() const;

  /// Seal the tracking slab after its contents were exported: any further
  /// traffic or delivery dispatch through this network is a hard precondition
  /// failure. A snapshot taken before further activity is the only
  /// consistent one — a second export, or an export after more dispatch,
  /// must refuse rather than hand over a stale in-flight set.
  void mark_exported() {
    SSBFT_EXPECTS(!exported_);
    exported_ = true;
  }
  [[nodiscard]] bool exported() const { return exported_; }

  /// Per-sender delay/chaos stream position (migrated at a handoff).
  [[nodiscard]] const Rng& link_rng(NodeId id) const { return link_rng_[id]; }
  /// Forged-channel key seq position (migrated at a handoff).
  [[nodiscard]] std::uint64_t forged_seq() const { return forged_seq_; }
  /// Per-sender even-channel key seq position (migrated at a handoff).
  [[nodiscard]] std::uint64_t send_seq(NodeId id) const {
    return send_seq_[id];
  }

  /// Adopt one node's migrated per-sender stream/counter positions.
  void adopt_node_streams(NodeId id, const Rng& link_rng,
                          std::uint64_t send_seq) {
    link_rng_[id] = link_rng;
    send_seq_[id] = send_seq;
  }
  /// Adopt the migrated world-level counters (forged channel, wire stats).
  void adopt_world_counters(std::uint64_t forged_seq,
                            const NetworkStats& stats) {
    forged_seq_ = forged_seq;
    stats_ = stats;
  }
  /// Re-materialize one migrated in-flight delivery under its ORIGINAL
  /// (when, creator, seq) key — the funnel every adoption constructor uses.
  void adopt_delivery(const PendingDelivery& pending) {
    schedule_delivery(pending.when, pending.key, pending.dest, pending.msg,
                      pending.forged);
  }

 private:
  /// Sample (or ask the oracle for) one non-faulty link+processing delay,
  /// drawn from `from`'s stream.
  [[nodiscard]] Duration sample_delay(NodeId from, NodeId dest,
                                      const WireMessage& msg);

  /// Next even-channel (network) EventKey for an event caused by `from`.
  [[nodiscard]] EventKey next_key(NodeId from) {
    return EventKey{from, send_seq_[from]++ * 2};
  }

  /// Is the network faulty at the current simulation instant? Advances the
  /// window cursor monotonically (queue time never rewinds).
  [[nodiscard]] bool faulty_now() {
    while (window_cursor_ < windows_.size() &&
           queue_.now() >= windows_[window_cursor_].end) {
      ++window_cursor_;
    }
    return window_cursor_ < windows_.size() &&
           queue_.now() >= windows_[window_cursor_].start;
  }

  /// Sign-and-admit one copy with the given route marker — the shared body
  /// of send() (kRouteDirect) and the overlay fan-out paths.
  void admit(NodeId from, NodeId dest, WireMessage msg, std::uint8_t route);
  /// Relay duty at the delivery instant: a verified copy whose route marker
  /// is non-direct is forwarded (topology_relay_targets) BEFORE the
  /// behavior sees it, preserving the origin's sender and tag. Runs first
  /// so the relay node's outgoing stream/key draws are a pure function of
  /// its arrival order — identical on both engines.
  void relay(NodeId self, const WireMessage& msg);
  void route(NodeId from, NodeId dest, WireMessage msg);
  void corrupt(NodeId from, WireMessage& msg);
  void tap(TapEvent::Kind kind, NodeId from, NodeId to, const WireMessage& msg);

  /// Schedule one per-copy delivery event, through the tracking slab when
  /// handoff export is enabled. EVERY delivery path (non-faulty unicast and
  /// broadcast fan-out, chaos, duplicates, forged plants) funnels through
  /// here, so handoff-export reasoning covers them all; a pooled payload
  /// body rides each copy as a slot reference, never re-copied.
  void schedule_delivery(RealTime when, EventKey key, NodeId dest,
                         const WireMessage& msg, bool forged);
  /// Delivery-side authenticator failure: count, tap, trace, discard.
  void reject(NodeId dest, const WireMessage& msg);
  [[nodiscard]] std::uint32_t track(const PendingDelivery& pending);
  [[nodiscard]] PendingDelivery untrack(std::uint32_t index);

  EventQueue& queue_;
  std::uint32_t n_;
  DelayModel link_delay_;
  DelayModel proc_delay_;
  ChaosConfig chaos_;
  std::vector<Rng> link_rng_;            // per-sender (seed, sender) streams
  std::vector<std::uint64_t> send_seq_;  // per-sender even-channel key seqs
  std::uint64_t forged_seq_ = 0;         // forged-channel key seq
  DeliverFn deliver_;
  // Chaos duty schedule (sorted, disjoint) + monotone lookup cursor.
  std::vector<ChaosWindow> windows_;
  std::size_t window_cursor_ = 0;
  NetworkStats stats_;
  TopologyConfig topo_{};  // resolved dissemination overlay (default: flat)
  TapFn tap_;
  DelayOracle oracle_;
  std::uint64_t oracle_seq_ = 0;
  Authenticator auth_;

  // Handoff-export tracking slab (enable_handoff_export). `pending_live_`
  // marks occupied slots; dead slots wait on `pending_free_` for reuse.
  // `exported_` seals the slab once its contents migrated (mark_exported).
  bool handoff_export_ = false;
  bool exported_ = false;
  std::vector<PendingDelivery> pending_;
  std::vector<bool> pending_live_;
  std::vector<std::uint32_t> pending_free_;
};

}  // namespace ssbft
