// ShardWorld: conservative-parallel single-run simulation engine.
//
// Partitions one World's n nodes across S shards (contiguous blocks), each
// with its own slab EventQueue, node clocks, and per-node RNG streams.
// Shards advance in lock-step time windows of width λ = the network's
// minimum link+processing delay (WorldConfig::lookahead): within a window
// no node can affect a node on another shard, so shards dispatch their
// queues concurrently; cross-shard sends buffer in per-pair mailboxes and
// are drained at the window barrier, always landing at or after the next
// window.
//
// Determinism is the headline constraint. Three shared mechanisms make a
// sharded run bit-identical to the serial World on the same Scenario+seed:
//   1. every random stream is a pure function of (seed, entity) — node
//      behavior RNGs, clock init, and per-SENDER delay sampling
//      (derive_node_rng / derive_node_clock / derive_link_rng);
//   2. events dispatch in content-based (when, creator, seq) key order
//      (EventKey), which each creator mints identically on any engine;
//   3. observation is canonicalized per node (metrics::run_digest), so the
//      wall-clock interleaving of shard threads is unobservable.
// test_shard asserts digest equality across all six StackKinds × shard
// counts; bench_shard measures the speedup.
//
// Requirements: λ > 0 (the Cluster degrades shards to the serial engine
// when the delay floor is zero — λ = 0 degrades to serial execution, never
// to wrongness) and no ACTIVE network-chaos window (chaos delays undercut
// any lookahead). Engine selection is phase-aware: a scenario with a chaos
// window runs the window on the serial engine and hands its complete state
// to a ShardWorld at the cut (sim/handoff_world.hpp, the adoption
// constructor below) — chaos means a serial PREFIX, not a serial run. Wire
// taps and delay oracles are serial-engine features; network()/queue()
// abort here by contract.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/shard.hpp"
#include "sim/world.hpp"

namespace ssbft {

class ShardWorld final : public WorldBase {
 public:
  explicit ShardWorld(WorldConfig config);
  /// Adoption form: continue a serial prefix's run from its exported
  /// snapshot (see WorldMigration). Nodes, in-flight deliveries, timer
  /// records (at their original handle tickets), pending world actions,
  /// stream positions, key-channel counters, and wire/dispatch counters all
  /// carry over; behaviors are NOT re-started. The suffix then dispatches
  /// the exact (when, creator, seq) order the serial engine would have.
  ShardWorld(WorldConfig config, WorldMigration&& migration);
  ~ShardWorld() override;

  /// Shard count this config will actually run with: clamped to n, and 1
  /// when sharding cannot preserve serial semantics (no lookahead). The
  /// Cluster consults this to pick the engine.
  [[nodiscard]] static std::uint32_t effective_shards(const WorldConfig& config);

  [[nodiscard]] std::uint32_t shard_count() const {
    return std::uint32_t(shards_.size());
  }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }

  void set_behavior(NodeId id, std::unique_ptr<NodeBehavior> behavior) override;
  [[nodiscard]] NodeBehavior* behavior(NodeId id) override;

  void start() override;

  void run_until(RealTime t) override;
  void run_to_quiescence(RealTime hard_deadline) override;

  [[nodiscard]] RealTime now() const override;
  [[nodiscard]] LocalTime local_now(NodeId id) const override;
  [[nodiscard]] RealTime real_at(NodeId id, LocalTime tau) const override;

  [[nodiscard]] DriftingClock& clock(NodeId id) override;
  [[nodiscard]] Rng& rng() override { return rng_; }
  [[nodiscard]] Logger& log() override { return logger_; }

  void scramble_node(NodeId id) override;

  void schedule(RealTime when, NodeId target,
                std::function<void()> action) override;
  void inject_raw(NodeId dest, WireMessage msg, Duration delay) override;

  [[nodiscard]] NetworkStats net_stats() const override;
  [[nodiscard]] std::uint64_t dispatched() const override;

  [[nodiscard]] Network& network() override;   // aborts: serial-only surface
  [[nodiscard]] EventQueue& queue() override;  // aborts: serial-only surface

 private:
  friend class Shard;

  /// Owning shard, from the exact node → shard table built at construction
  /// (the boundaries floor(s·n/S) have no closed-form inverse that is safe
  /// to get subtly wrong — a mismapped node would abort or corrupt).
  [[nodiscard]] Shard& shard_of(NodeId id) {
    return *shards_[shard_index_[id]];
  }
  /// The shard the calling thread is currently executing a window for, or
  /// nullptr on the orchestrating thread / in serial phases.
  [[nodiscard]] static Shard* current_shard() { return tl_current_shard_; }

  /// Mint the next world-level (kGlobalCreator) key. Serial phases only —
  /// matches the serial queue's internal counter call-for-call.
  [[nodiscard]] EventKey next_world_key() {
    return EventKey{kGlobalCreator, world_seq_++};
  }

  /// Advance all shards to `target` in lookahead windows. `quiescence`
  /// stops as soon as no shard holds an event at or before `target` and
  /// leaves each queue's clock at its last dispatch; otherwise every queue
  /// is advanced to `target` exactly like the serial engine.
  void run_windows(RealTime target, bool quiescence);
  /// Barrier-completion step: plan the next window (or stop). Runs
  /// single-threaded while every worker is parked at the barrier.
  void plan_next_window();

  static thread_local Shard* tl_current_shard_;

  Rng rng_;
  Logger logger_;
  Duration lookahead_{};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::uint32_t> shard_index_;  // node id → owning shard
  std::uint64_t world_seq_ = 0;
  std::uint64_t forged_seq_ = 0;  // forged-channel key seq (kForgedCreator)
  // World-level counters: inject_raw forged accounting, plus — after an
  // engine handoff — the adopted serial prefix's wire and dispatch totals.
  NetworkStats world_stats_;
  std::uint64_t base_dispatched_ = 0;
  RealTime global_now_{};
  bool started_ = false;

  // Window-loop shared state; written only in plan_next_window (all workers
  // parked at the barrier) and read by workers after the barrier releases.
  RealTime window_end_{};
  bool window_inclusive_ = false;
  bool stop_ = false;
  RealTime target_{};
  bool quiescence_ = false;
};

}  // namespace ssbft
