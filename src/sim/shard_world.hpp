// ShardWorld: conservative-parallel single-run simulation engine.
//
// Partitions one World's n nodes across S shards (contiguous blocks), each
// with its own slab EventQueue, node clocks, and per-node RNG streams.
// Shards advance in lock-step time windows of width λ = the network's
// minimum link+processing delay (WorldConfig::lookahead): within a window
// no node can affect a node on another shard, so shards dispatch their
// queues concurrently; cross-shard sends buffer in per-pair mailboxes and
// are drained at the window barrier, always landing at or after the next
// window.
//
// Determinism is the headline constraint. Three shared mechanisms make a
// sharded run bit-identical to the serial World on the same Scenario+seed:
//   1. every random stream is a pure function of (seed, entity) — node
//      behavior RNGs, clock init, and per-SENDER delay sampling
//      (derive_node_rng / derive_node_clock / derive_link_rng);
//   2. events dispatch in content-based (when, creator, seq) key order
//      (EventKey), which each creator mints identically on any engine;
//   3. observation is canonicalized per node (metrics::run_digest), so the
//      wall-clock interleaving of shard threads is unobservable.
// test_shard asserts digest equality across all six StackKinds × shard
// counts × scheduling policies; bench_shard measures the speedup.
//
// On top of the static-blocks engine, WorldConfig::shard_sched selects the
// adaptive scheduler (see ShardSched in sim/world.hpp):
//   * balance — per-node dispatch counts (the cost model) feed a greedy
//     balanced repartition of the contiguous blocks, recomputed at window
//     barriers behind a hysteresis threshold. The move reuses the engine-
//     migration machinery: tracked deliveries, exported timer records, and
//     adopted node state rebuild the shards with everything in flight.
//   * steal — work lives in PER-NODE queues; at plan time each shard lists
//     its nodes with runnable window work, and workers claim whole nodes
//     (own shard first, then the busiest peer) via atomic cursors. Within
//     a window nodes are mutually independent — every send lands at or
//     after the window end, only a node's own timers create same-window
//     work — so per-node key order is all the digest can see, and who
//     executed a node is unobservable. Sends during steal windows park in
//     per-worker outboxes merged at the barrier.
//   * lax — windows widen to k·λ and the per-window barrier relaxes to
//     published frontiers (the Graphite/Sniper slack barrier adapted to a
//     bounded-delay network): each shard repeatedly processes up to
//     min(peer frontiers) + λ, receiving cross-shard sends mid-window
//     through a mutex inbox, and commits only at the deterministic window
//     edge. A shard never dispatches past what a peer could still affect,
//     so the dispatch gate — hence the digest — is unchanged.
//
// Requirements: λ > 0 (the Cluster degrades shards to the serial engine
// when the delay floor is zero — λ = 0 degrades to serial execution, never
// to wrongness) and no ACTIVE network-chaos window (chaos delays undercut
// any lookahead). Engine selection is phase-aware: chaos windows run on
// the serial engine and the stretches between them on a ShardWorld, with
// a full state migration at every boundary (sim/duty_world.hpp; the
// adoption constructor and export_migration below are the two directions)
// — chaos means serial SEGMENTS, not a serial run. Wire taps and delay
// oracles are serial-engine features; network()/queue() abort here by
// contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/shard.hpp"
#include "sim/world.hpp"

namespace ssbft {

class ShardWorld final : public WorldBase {
 public:
  explicit ShardWorld(WorldConfig config);
  /// Adoption form: continue a serial segment's run from its exported
  /// snapshot (see WorldMigration). Nodes, in-flight deliveries, timer
  /// records (at their original handle tickets), pending world actions,
  /// stream positions, key-channel counters, and wire/dispatch counters all
  /// carry over; behaviors are NOT re-started. The segment then dispatches
  /// the exact (when, creator, seq) order the serial engine would have.
  /// `handoff_export` pre-enables per-shard delivery tracking so this
  /// segment can itself be exported at the next cut (reverse migration).
  /// Under an adaptive policy the initial partition is balanced against the
  /// migrated in-flight set (deliveries + timers per node) — exactly the
  /// post-chaos hot spot the static equal split handles worst.
  ShardWorld(WorldConfig config, WorldMigration&& migration,
             bool handoff_export = false);
  ~ShardWorld() override;

  /// Shard count this config will actually run with: clamped to n, and 1
  /// when sharding cannot preserve serial semantics (no lookahead). The
  /// Cluster consults this to pick the engine.
  [[nodiscard]] static std::uint32_t effective_shards(const WorldConfig& config);

  [[nodiscard]] std::uint32_t shard_count() const {
    return std::uint32_t(shards_.size());
  }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }
  /// The policy this engine actually runs: the configured one, demoted to
  /// kStatic when only one shard exists (nothing to schedule across).
  [[nodiscard]] ShardSched sched() const { return sched_; }
  /// Scheduler observability: windows, per-window imbalance, repartition
  /// and steal counters (see ShardSchedStats).
  [[nodiscard]] const ShardSchedStats& sched_stats() const {
    return sched_stats_;
  }

  void set_behavior(NodeId id, std::unique_ptr<NodeBehavior> behavior) override;
  [[nodiscard]] NodeBehavior* behavior(NodeId id) override;

  void start() override;

  void run_until(RealTime t) override;
  void run_to_quiescence(RealTime hard_deadline) override;

  // --- engine-migration surface (sim/duty_world.hpp) -----------------------

  /// Dispatch every event strictly before `t` — the migration cut. The
  /// windowed loop runs exactly as in run_until except the final window is
  /// exclusive at `t` and queues are NOT advanced to `t`; every clock rests
  /// at its last dispatch, and everything still pending fires at or after
  /// `t` (within-window work < t always drains before the window closes,
  /// and cross-shard arrivals land ≥ window end).
  void run_before(RealTime t);

  /// Track every delivery for export on all shards (fresh-start form; the
  /// adoption constructor's flag covers adopted runs). Must precede all
  /// traffic; see Shard::enable_handoff_export. Idempotent — the adaptive
  /// policies pre-enable tracking for their own repartitions.
  void enable_handoff_export();

  /// Merge the per-shard state back into one serial-adoptable snapshot:
  /// queues' in-flight deliveries (shard then slab order), timer slabs
  /// (disjoint by the partitioned import + strided append — concatenation
  /// plus an elementwise-max generation merge), node streams/clocks/
  /// behaviors, and the world-level counters. One-shot: a second export,
  /// or any run/schedule after it, is a hard precondition failure.
  [[nodiscard]] WorldMigration export_migration();

  /// Key-less world-channel counter position (mirrors
  /// EventQueue::global_seq on the serial engine) — the seq the next
  /// schedule() will mint, which the migration wrapper reads to register
  /// extractable actions.
  [[nodiscard]] std::uint64_t world_seq() const { return world_seq_; }

  /// Re-register a migrated world-level action under its ORIGINAL key
  /// (adoption path — the serial twin is queue().schedule(when, key, ...)).
  void schedule_keyed(RealTime when, EventKey key, NodeId target,
                      std::function<void()> action);

  [[nodiscard]] RealTime now() const override;
  [[nodiscard]] LocalTime local_now(NodeId id) const override;
  [[nodiscard]] RealTime real_at(NodeId id, LocalTime tau) const override;

  [[nodiscard]] DriftingClock& clock(NodeId id) override;
  [[nodiscard]] Rng& rng() override { return rng_; }
  [[nodiscard]] Logger& log() override { return logger_; }

  void scramble_node(NodeId id) override;

  void schedule(RealTime when, NodeId target,
                std::function<void()> action) override;
  void inject_raw(NodeId dest, WireMessage msg, Duration delay) override;

  [[nodiscard]] NetworkStats net_stats() const override;
  [[nodiscard]] std::uint64_t dispatched() const override;

  [[nodiscard]] Network& network() override;   // aborts: serial-only surface
  [[nodiscard]] EventQueue& queue() override;  // aborts: serial-only surface

 private:
  friend class Shard;

  /// Per-worker execution context for steal windows: the thread's private
  /// send outbox (merged at the barrier in worker order), wire counters
  /// (folded into the world totals at plan time), steal counters, and a
  /// logger thieves may write without racing the shard's own.
  struct ExecContext {
    ExecContext(LogLevel level, std::uint32_t shard_count)
        : outbox(shard_count), logger(level) {}
    std::vector<Shard::Mailbox> outbox;  // by destination shard
    NetworkStats stats;
    std::uint64_t steals = 0;
    std::uint64_t stolen_events = 0;
    std::uint64_t window_events = 0;  // dispatches this window (imbalance)
    Logger logger;
  };

  // Adaptive-scheduler tuning. Windows between repartition decisions and
  // the mean imbalance that triggers one (hysteresis: a stable workload
  // never pays the rebuild); the lax window widening factor k.
  static constexpr std::uint32_t kRepartitionWindows = 16;
  static constexpr double kRepartitionThreshold = 1.25;
  static constexpr std::int64_t kLaxFactor = 4;

  /// Owning shard, from the exact node → shard table built at construction
  /// (the boundaries floor(s·n/S) have no closed-form inverse that is safe
  /// to get subtly wrong — a mismapped node would abort or corrupt).
  [[nodiscard]] Shard& shard_of(NodeId id) {
    return *shards_[shard_index_[id]];
  }
  /// The shard the calling thread is currently executing a window for, or
  /// nullptr on the orchestrating thread / in serial phases.
  [[nodiscard]] static Shard* current_shard() { return tl_current_shard_; }

  /// Mint the next world-level (kGlobalCreator) key. Serial phases only —
  /// matches the serial queue's internal counter call-for-call.
  [[nodiscard]] EventKey next_world_key() {
    return EventKey{kGlobalCreator, world_seq_++};
  }

  /// Cost-model hook: one dispatched event charged to `id` (delivery or
  /// timer fire). Only the adaptive policies pay the increment.
  void note_cost(NodeId id) {
    if (cost_tracking_) ++node_cost_[id];
  }

  /// (Re)build the shard set over contiguous blocks [bounds[s], bounds[s+1]);
  /// bounds.front() == 0, bounds.back() == n. Honors track_handoff_.
  void make_shards(const std::vector<NodeId>& bounds);
  /// Greedy balanced contiguous partition of `weight` into S blocks, every
  /// block non-empty. Deterministic (pure integer arithmetic).
  [[nodiscard]] static std::vector<NodeId> balanced_boundaries(
      const std::vector<std::uint64_t>& weight, std::uint32_t shards);
  /// Tear the live shards down into a migration snapshot and rebuild them
  /// on cost-balanced boundaries — the balance policy's barrier-time move.
  void repartition();

  /// Register + schedule a world action through the extractable-wrapper
  /// registry (adaptive policies; static schedules the closure directly).
  void schedule_world_action(RealTime when, EventKey key, NodeId target,
                             std::function<void()> action);
  void fire_action(std::uint64_t seq);

  /// Advance all shards to `target` in lookahead windows. `quiescence`
  /// stops as soon as no shard holds an event at or before `target` and
  /// leaves each queue's clock at its last dispatch; otherwise every queue
  /// is advanced to `target` exactly like the serial engine. `cut_` mode
  /// (run_before) makes the final window exclusive at `target` and also
  /// leaves each clock at its last dispatch.
  void run_windows(RealTime target, bool quiescence);
  /// Barrier-completion step: account the window that just ran, maybe
  /// repartition, then plan the next window (or stop). Runs single-threaded
  /// while every worker is parked at the barrier.
  void plan_next_window();
  /// Fold the finished window's per-worker/per-shard dispatch deltas into
  /// the imbalance metrics (and, for steal, merge exec-context counters).
  void account_window();
  /// One worker's steal-window loop: drain own items, then claim nodes
  /// from the busiest shard until nothing runnable remains.
  void run_steal_window(std::uint32_t worker);
  /// One shard's lax-window loop: repeatedly drain the inbox and process
  /// up to min(peer frontiers) + λ until the window edge commits.
  void lax_run(Shard* shard);

  static thread_local Shard* tl_current_shard_;
  /// The queue whose clock is "now" for the executing thread — a node
  /// queue during steal windows, null otherwise (fall back to the shard
  /// queue / global clock).
  static thread_local EventQueue* tl_current_queue_;
  static thread_local ExecContext* tl_exec_;

  Rng rng_;
  Logger logger_;
  Duration lookahead_{};
  ShardSched sched_ = ShardSched::kStatic;  // demoted to kStatic when S == 1
  bool cost_tracking_ = false;
  bool track_handoff_ = false;  // new shards enable delivery tracking
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::uint32_t> shard_index_;  // node id → owning shard
  std::uint64_t world_seq_ = 0;
  std::uint64_t forged_seq_ = 0;  // forged-channel key seq (kForgedCreator)
  // World-level counters: inject_raw forged accounting, plus — after an
  // engine handoff or a repartition — the retired shards' wire and dispatch
  // totals.
  NetworkStats world_stats_;
  std::uint64_t base_dispatched_ = 0;
  RealTime global_now_{};
  bool started_ = false;
  bool exported_ = false;  // export_migration happened; the engine is dead

  // Cost model (adaptive policies): dispatches charged per node since
  // construction, and the snapshot at the last repartition — the delta is
  // the recent-load weight vector.
  std::vector<std::uint64_t> node_cost_;
  std::vector<std::uint64_t> node_cost_base_;
  std::vector<std::uint64_t> last_shard_dispatched_;  // per-window deltas
  ShardSchedStats sched_stats_;
  double hysteresis_sum_ = 0.0;  // window imbalance since last decision
  std::uint32_t hysteresis_windows_ = 0;

  // Extractable world-action registry (adaptive policies): the queues hold
  // only [seq → fire_action] wrappers, so a repartition can re-register
  // every pending action on the rebuilt shards under its original key.
  // Guarded: actions fire on worker threads.
  std::mutex actions_mutex_;
  std::map<std::uint64_t, WorldMigration::PendingAction> actions_;

  std::vector<std::unique_ptr<ExecContext>> exec_;          // kSteal, per worker
  std::vector<std::atomic<std::uint32_t>> steal_cursor_;    // per shard
  std::vector<std::atomic<std::int64_t>> lax_frontier_;     // kLax, ns

  // Window-loop shared state; written only in plan_next_window (all workers
  // parked at the barrier) and read by workers after the barrier releases.
  RealTime window_start_{};
  RealTime window_end_{};
  bool window_inclusive_ = false;
  bool in_window_ = false;  // a window ran since the last accounting
  bool stop_ = false;
  RealTime target_{};
  bool quiescence_ = false;
  bool cut_ = false;  // run_before: final window exclusive at target_
};

}  // namespace ssbft
