// Message-delay distributions for the bounded-delay network (Def. 2).
//
// Whatever the distribution, a non-faulty network truncates at the bound δ;
// the *shape* below δ is exactly what experiment E4 sweeps to demonstrate
// the message-driven speed-up (the protocol finishes at actual speed, the
// time-driven baseline at worst-case speed).
#pragma once

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace ssbft {

struct DelayModel {
  enum class Kind {
    kConstant,   // always `typical`
    kUniform,    // uniform in [min, max]
    kExpTrunc,   // exponential(mean=typical) truncated to [min, max]
  };

  Kind kind = Kind::kUniform;
  Duration min = Duration::zero();
  Duration typical = Duration::zero();  // kConstant value / kExpTrunc mean
  Duration max = Duration::zero();      // hard bound (δ or π)

  [[nodiscard]] static DelayModel constant(Duration v) {
    return {Kind::kConstant, v, v, v};
  }
  [[nodiscard]] static DelayModel uniform(Duration lo, Duration hi) {
    SSBFT_EXPECTS(lo <= hi);
    return {Kind::kUniform, lo, (lo + hi) / 2, hi};
  }
  [[nodiscard]] static DelayModel exp_truncated(Duration mean, Duration cap) {
    SSBFT_EXPECTS(mean <= cap);
    return {Kind::kExpTrunc, Duration::zero(), mean, cap};
  }
  /// Exponential with a hard lower bound: mean `mean` overall, truncated to
  /// [min, cap]. A positive min models a physical network floor (serialization
  /// + propagation) — and is exactly the conservative lookahead the sharded
  /// engine turns into parallelism (shard_world.hpp).
  [[nodiscard]] static DelayModel exp_truncated(Duration min, Duration mean,
                                                Duration cap) {
    SSBFT_EXPECTS(min <= mean && mean <= cap);
    return {Kind::kExpTrunc, min, mean, cap};
  }

  [[nodiscard]] Duration sample(Rng& rng) const {
    switch (kind) {
      case Kind::kConstant:
        return typical;
      case Kind::kUniform:
        return Duration{rng.next_in(min.ns(), max.ns())};
      case Kind::kExpTrunc:
        // min + residual exponential keeps the overall mean at `typical`
        // (for min = 0 this is the historical behaviour, bit-for-bit).
        if (typical <= min) return min;  // degenerate: all mass at the floor
        return min + Duration{static_cast<std::int64_t>(rng.next_exp_truncated(
                         double((typical - min).ns()),
                         double((max - min).ns())))};
    }
    return max;
  }
};

}  // namespace ssbft
