// DutyWorld: schedule-driven alternating engine for recurring chaos.
//
// The paper's transient-fault model is not one-shot: a self-stabilizing
// stack must re-converge after EVERY burst of network chaos, however often
// they recur. A chaos duty cycle — windows [s_k, s_k + width) repeating
// every `period` — therefore alternates two execution regimes: inside a
// window the network behaves arbitrarily (unbounded effective delays, so
// only the serial engine is sound), and between windows the bounded-delay
// model holds and the conservative-parallel ShardWorld scales.
//
// DutyWorld compiles the window list into an alternation schedule and
// switches engines at every boundary with a FULL state migration in both
// directions:
//   * serial → sharded (window end): World::export_migration splits the
//     run across shards — in-flight deliveries re-materialize under their
//     original content-based keys, live timer records re-arm at their
//     original (index, generation) tickets, every RNG stream and key
//     channel continues at its exact position (PR 5's forward path);
//   * sharded → serial (window start): ShardWorld::export_migration merges
//     the shard queues, tracking slabs, and timer slabs (disjoint by the
//     partitioned import + strided allocation) back into one snapshot the
//     serial World adopts — the NEW reverse path, which is what lets the
//     cycle repeat any number of times.
// Every cut is exclusive (run_before): the pre-cut engine dispatches
// everything strictly before the boundary, so the alternating run executes
// the identical total (when, creator, seq) order an all-serial run would,
// and per-node digests are bit-identical (test_duty pins all six
// StackKinds × shards {1, 2, 4}; bench_dutycycle hard-gates it in CI).
//
// Workload actions scheduled through this wrapper are registered in an
// engine-agnostic map keyed by their world-channel seq and re-registered
// under their ORIGINAL keys after every migration — unlike deliveries and
// timers, a type-erased closure cannot be peeled back out of a queue, so
// the orchestrator must keep the originals for as long as cuts remain.
//
// The serial surface (network(), queue()) forwards during serial segments
// and aborts during sharded ones, exactly like ShardWorld's.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/shard_world.hpp"
#include "sim/world.hpp"

namespace ssbft {

class DutyWorld final : public WorldBase {
 public:
  /// `windows` is the chaos schedule: sorted, non-overlapping (contiguous
  /// windows should be pre-merged — Scenario::chaos_windows normalizes),
  /// each start < end. Must be non-empty, and `config.shards` must
  /// actually shard (the Cluster builds a plain serial World otherwise).
  DutyWorld(WorldConfig config, std::vector<ChaosWindow> windows);
  ~DutyWorld() override;

  /// The engine-switch boundaries, in order (window edges; a window
  /// starting at t=0 contributes only its end).
  [[nodiscard]] const std::vector<RealTime>& cuts() const { return cuts_; }
  /// The next boundary not yet crossed (max() when the schedule is spent).
  [[nodiscard]] RealTime next_cut() const {
    return cursor_ < cuts_.size() ? cuts_[cursor_] : RealTime::max();
  }
  /// Engine switches performed so far (diagnostics/tests).
  [[nodiscard]] std::size_t migrations() const { return migrations_; }
  /// Wall nanoseconds spent inside engine switches — export + adopt +
  /// action re-registration, run_before (dispatch) excluded. The benches
  /// split alternation cost into migration vs dispatch with this.
  [[nodiscard]] std::uint64_t migration_ns() const { return migration_ns_; }
  /// Shard count chosen for each sharded segment, in order. Under an
  /// adaptive shard_sched the count follows the previous segment's event
  /// rate; static runs always use the configured count.
  [[nodiscard]] const std::vector<std::uint32_t>& segment_shards() const {
    return segment_shards_;
  }
  /// Scheduler counters summed over every sharded segment so far,
  /// including the live one (each segment is a fresh ShardWorld).
  [[nodiscard]] ShardSchedStats sched_stats() const {
    ShardSchedStats total = sched_total_;
    if (sharded_) total += sharded_->sched_stats();
    return total;
  }
  /// Is the windowed engine currently active? (Tests.)
  [[nodiscard]] bool sharded_active() const { return sharded_ != nullptr; }
  /// The active windowed engine, sharded segments only (tests).
  [[nodiscard]] ShardWorld* sharded_engine() { return sharded_.get(); }

  void set_behavior(NodeId id, std::unique_ptr<NodeBehavior> behavior) override;
  [[nodiscard]] NodeBehavior* behavior(NodeId id) override;
  void start() override;

  void run_until(RealTime t) override;
  void run_to_quiescence(RealTime hard_deadline) override;

  [[nodiscard]] RealTime now() const override;
  [[nodiscard]] LocalTime local_now(NodeId id) const override;
  [[nodiscard]] RealTime real_at(NodeId id, LocalTime tau) const override;

  [[nodiscard]] DriftingClock& clock(NodeId id) override;
  [[nodiscard]] Rng& rng() override;
  [[nodiscard]] Logger& log() override;

  void scramble_node(NodeId id) override;

  void schedule(RealTime when, NodeId target,
                std::function<void()> action) override;
  void inject_raw(NodeId dest, WireMessage msg, Duration delay) override;

  [[nodiscard]] NetworkStats net_stats() const override;
  [[nodiscard]] std::uint64_t dispatched() const override;

  /// Serial surface: forwards during serial segments, aborts during
  /// sharded ones (no single Network/queue exists there).
  [[nodiscard]] Network& network() override;
  [[nodiscard]] EventQueue& queue() override;

 private:
  /// Adaptive segment sizing: aim for about this many dispatched events
  /// per shard per stabilization segment — fewer and the barrier overhead
  /// dominates, more and a single segment under-parallelizes.
  static constexpr std::uint64_t kEventsPerSegmentShard = 2000;

  [[nodiscard]] WorldBase& active();
  [[nodiscard]] const WorldBase& active() const;

  /// Shard count for the segment starting at `cut`, from the PREVIOUS
  /// segment's event rate (pure simulation state — deterministic). Static
  /// scheduling keeps the configured count.
  [[nodiscard]] std::uint32_t segment_shard_count(RealTime cut,
                                                  std::uint64_t dispatched_now);

  /// Cross one boundary: drain the active engine strictly before `cut`,
  /// export, adopt on the other engine, and re-register the surviving
  /// workload actions under their original keys.
  void migrate_to(RealTime cut);
  /// Advance the schedule: cross every boundary at or before `t`.
  void cross_cuts_until(RealTime t);
  /// Scheduled-wrapper target: extract and run a registered action.
  void fire_action(std::uint64_t seq);

  std::vector<ChaosWindow> windows_;  // the chaos schedule
  std::vector<RealTime> cuts_;                 // engine-switch boundaries
  std::size_t cursor_ = 0;                     // next cut to cross
  std::size_t migrations_ = 0;
  std::uint64_t migration_ns_ = 0;             // export/adopt wall time
  ShardSchedStats sched_total_;                // retired segments' counters
  std::vector<std::uint32_t> segment_shards_;  // per sharded segment
  // Previous-segment event-rate inputs for adaptive sizing.
  std::uint64_t segment_dispatch_base_ = 0;
  RealTime segment_start_{};

  // Exactly one engine is live at a time; which one flips at every cut.
  std::unique_ptr<World> serial_;
  std::unique_ptr<ShardWorld> sharded_;

  // Workload actions scheduled through us, keyed by the world-channel seq
  // the active engine minted (deterministic iteration order). An action
  // unregisters itself when it runs; whatever remains at a cut is
  // re-registered on the adopting engine under its original key — the map
  // keeps the original closures because migrations can recur.
  std::map<std::uint64_t, WorldMigration::PendingAction> actions_;
};

}  // namespace ssbft
