// Hierarchical timer wheel (Varghese–Lauck) for dense protocol timers.
//
// Every protocol layer in the stack is driven by short-horizon timers —
// round deadlines, pulse watchdogs, stabilization back-offs. Keeping those
// in the engine's binary heap costs an O(log n) sift per arm/fire, and the
// 4096-in-flight row of bench_engine shows that sift becoming the hot path
// once allocation is gone. The wheel replaces it with O(1) schedule/cancel:
//
//   * kLevels levels of kSlots slots each; a level-L slot spans kSlots^L
//     ticks (1 tick = 2^kTickShift ns), so the wheel covers kSlots^kLevels
//     ticks (~6.4 days of simulated time). Timers beyond that horizon — or
//     whose path crosses the top-level span boundary — wait on an overflow
//     list and are scattered into the wheel once they come into range.
//   * Records live in a slab (index-addressed vector + free list) and are
//     linked into their slot through intrusive doubly-linked lists, so
//     cancel is one unlink. Handles are (index, generation) tickets; every
//     release bumps the generation, making stale handles harmless.
//   * Advancing is lazily cascading: nothing moves until advance() runs,
//     which walks only *occupied* slots (one occupancy bitmap per level)
//     up to the target time, re-scattering higher-level slots downward and
//     collecting due records into a batch.
//
// Determinism is delegated, not re-proven: the wheel never dispatches.
// Batched expiry hands each due record — with its original real-time and
// content-based (creator, seq) EventKey — to the engine, which schedules it
// into the slab EventQueue; the heap's total order on (when, creator, seq)
// then reproduces the exact serial dispatch order no matter how records
// were binned into slots or in which order a batch drained. A record may be
// handed over up to one tick early (slot granularity); that is unobservable
// for the same reason. See README "Timer subsystem" for the full argument.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hpp"  // EventKey
#include "util/assert.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace ssbft {

class TimerWheel {
 public:
  static constexpr std::uint32_t kSlotBits = 6;
  static constexpr std::uint32_t kSlots = 1u << kSlotBits;  // 64 per level
  static constexpr std::uint32_t kLevels = 6;
  /// One tick = 2^13 ns ≈ 8 µs: far below every protocol constant (d is
  /// ~ms-scale, the shortest watchdogs are tens of µs), so ms-scale timers
  /// land within the two lowest levels and dense periodic populations
  /// cross only a handful of slots per period — while hand-over stays at
  /// most one tick early, a depth the heap re-orders for free.
  static constexpr std::uint32_t kTickShift = 13;
  static constexpr std::uint64_t kHorizonTicks = 1ull
                                                 << (kSlotBits * kLevels);

  /// One expired record, ready to be scheduled into the EventQueue. The
  /// record stays allocated (claimable/cancellable) until claim().
  struct Due {
    RealTime when;
    EventKey key;
    TimerHandle handle;
  };

  TimerWheel() = default;
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Arm a timer: O(1). `when` must be ≥ 0 (simulation epoch); a `when` at
  /// or before the wheel's current time goes onto the ready list and comes
  /// out of the next advance() (zero-delay timers fire, never vanish).
  /// Defined inline below — this is the per-event hot path.
  [[nodiscard]] TimerHandle schedule(RealTime when, EventKey key, NodeId node,
                                     std::uint64_t cookie);

  /// Arm a record WITHOUT linking it into the wheel — the heap-backed
  /// fallback path, where the caller schedules the fire event itself and
  /// only needs claim()/cancel() semantics. The key is carried so an
  /// engine migration can re-materialize the fire event under its
  /// original (creator, seq) position in the total order.
  [[nodiscard]] TimerHandle arm_external(RealTime when, EventKey key,
                                         NodeId node, std::uint64_t cookie);

  /// Cancel: O(1). True iff the handle named a live timer (armed in the
  /// wheel or already handed to the engine but not yet fired) — that timer
  /// will never fire. Invalid/stale/fired handles return false, harmlessly.
  bool cancel(TimerHandle handle);

  /// Fire-time resolution, called by the engine's scheduled closure. True
  /// iff the record is still live: fills (node, cookie) and releases the
  /// record. False means the timer was cancelled after hand-over.
  [[nodiscard]] bool claim(TimerHandle handle, NodeId& node,
                           std::uint64_t& cookie);

  /// Lower bound on the earliest armed record's fire time (slot
  /// granularity), or RealTime::max() when nothing is armed. Guaranteed ≤
  /// the true minimum, and guaranteed to exceed `t` after advance(t) — the
  /// engine loop's progress condition. O(1): served from a cache that
  /// schedule() min-merges and advance() refreshes (a cancel may leave it
  /// stale-LOW, which costs one empty advance, never correctness).
  [[nodiscard]] RealTime next_due() const {
    if (!next_due_valid_) {
      next_due_cache_ = compute_next_due();
      next_due_valid_ = true;
    }
    return next_due_cache_;
  }

  /// Advance wheel time to `t`, cascading lazily; `out` receives every due
  /// record (cleared first). Records whose slot straddles `t` may be handed
  /// over up to one tick early — the EventQueue's key order makes that
  /// unobservable. O(occupied slots crossed + batch size).
  void advance(RealTime t, std::vector<Due>& out);

  /// Records armed in the wheel (slots + ready + overflow); excludes
  /// records already handed to the engine.
  [[nodiscard]] std::size_t armed() const { return armed_; }
  /// Records alive in the slab (armed + handed-over-but-unclaimed).
  [[nodiscard]] std::size_t live() const { return live_; }
  /// High-water mark of live(): the most timer records this wheel ever
  /// held at once (capacity-planning gauge; stats_registry leaf
  /// wheel.peak_records).
  [[nodiscard]] std::size_t peak_live() const { return peak_live_; }
  /// Far-future records parked beyond the wheel horizon.
  [[nodiscard]] std::size_t overflow_size() const { return overflow_count_; }

  // --- engine-migration surface (sim/duty_world.hpp) -----------------------

  /// One live record, exported for cross-engine migration: everything
  /// needed to re-arm it in another wheel at the SAME (index, generation)
  /// ticket — behaviors hold TimerHandles across the handoff, and those
  /// tickets must keep naming their timers.
  struct ExportedRecord {
    RealTime when;
    EventKey key;
    NodeId node = 0;
    std::uint64_t cookie = 0;
    TimerHandle handle;  // original (index, generation)
  };

  /// Snapshot every live record — armed in the wheel, staged on the ready
  /// or overflow lists, or already handed to the (dying) engine's queue but
  /// unclaimed — plus the generation of every slab slot. Handed-over
  /// records are exported like armed ones: their fire events die with the
  /// old engine's queue, so the importing wheel must hand them over again.
  /// The wheel itself is left untouched.
  void export_records(std::vector<ExportedRecord>& out,
                      std::vector<std::uint32_t>& generations) const;

  /// Rebuild this (fresh, empty) wheel as one partition of an exported
  /// snapshot: adopt the full slab-generation map — a recycled index can
  /// then never re-mint a ticket some stale pre-migration handle still
  /// names — advance wheel time to `now`, and re-arm exactly the records
  /// `accept` admits (the importing shard's own nodes) at their original
  /// tickets. Records due at or before `now` stage on the ready list and
  /// come out of the next advance with their original (when, key).
  ///
  /// (self, parties) partition the FUTURE allocation space so sibling
  /// importers can later be merged back into one snapshot: this wheel may
  /// recycle a snapshot index only if no sibling re-armed it (free slots
  /// are ownership-partitioned by index % parties == self) and appends new
  /// slab indices only on its own residue class mod `parties`. Two sibling
  /// wheels therefore never hold live records at the same index, which
  /// makes the reverse (sharded → serial) merge a plain concatenation.
  /// A serial importer adopts the whole space: (0, 1).
  void import_records(const std::vector<ExportedRecord>& records,
                      const std::vector<std::uint32_t>& generations,
                      RealTime now,
                      const std::function<bool(NodeId)>& accept,
                      std::uint32_t self = 0, std::uint32_t parties = 1);

 private:
  static constexpr std::uint32_t kNull = ~std::uint32_t{0};
  // List ids: one per slot, then the ready and overflow lists. Records
  // handed to the engine (kInHeap) or free (kFree) are in no list.
  static constexpr std::uint32_t kSlotLists = kLevels * kSlots;
  static constexpr std::uint32_t kReadyList = kSlotLists;
  static constexpr std::uint32_t kOverflowList = kSlotLists + 1;
  static constexpr std::uint32_t kListCount = kSlotLists + 2;
  static constexpr std::uint32_t kInHeap = ~std::uint32_t{0} - 1;
  static constexpr std::uint32_t kFree = ~std::uint32_t{0};

  struct Record {
    RealTime when{};
    std::uint64_t seq = 0;     // EventKey half
    std::uint64_t cookie = 0;  // protocol payload, opaque to the wheel
    std::uint32_t creator = 0; // EventKey half
    NodeId node = 0;
    std::uint32_t generation = 0;
    std::uint32_t prev = kNull;
    std::uint32_t next = kNull;
    std::uint32_t list = kFree;
  };

  [[nodiscard]] static std::uint64_t tick_of(RealTime t) {
    SSBFT_ASSERT(t.ns() >= 0);
    return std::uint64_t(t.ns()) >> kTickShift;
  }

  [[nodiscard]] std::uint32_t alloc_record();
  void release_record(std::uint32_t index);

  void link(std::uint32_t index, std::uint32_t list);
  void unlink(std::uint32_t index);

  /// Place an unlinked record relative to the current tick: a wheel slot
  /// within the horizon, the overflow list beyond it. A record already due
  /// goes straight into `out` when draining (`out` non-null), onto the
  /// ready list otherwise (zero-delay schedule; the next advance flushes).
  void place(std::uint32_t index, std::vector<Due>* out);

  /// Move the ready list into `out`, marking each record kInHeap.
  void flush_ready(std::vector<Due>& out);

  [[nodiscard]] RealTime compute_next_due() const;

  /// Earliest occupied slot across all levels: absolute start tick + list
  /// id. kNull list when every slot is empty.
  void earliest_slot(std::uint64_t& slot_tick, std::uint32_t& list) const;

  /// Re-scatter overflow records that came into range of the wheel.
  /// Returns true if anything moved (the next-due cache must recompute).
  bool rescan_overflow(std::vector<Due>& out);

  std::vector<Record> records_;
  std::uint32_t free_head_ = kNull;
  // Append cursor/stride for slab growth. Fresh wheels: dense push_back
  // (0, stride 1). Partition importers: own residue class mod the party
  // count, so sibling wheels never allocate the same index (import_records).
  std::uint32_t alloc_next_ = 0;
  std::uint32_t alloc_stride_ = 1;
  std::vector<std::uint32_t> heads_ =
      std::vector<std::uint32_t>(kListCount, kNull);
  std::uint64_t occupied_[kLevels] = {};  // bit s ⇔ slot s non-empty
  std::uint64_t tick_ = 0;                // wheel time (ticks)
  RealTime ready_min_ = RealTime::max();  // min `when` on the ready list
  mutable RealTime next_due_cache_ = RealTime::max();
  mutable bool next_due_valid_ = true;  // empty wheel: max() is exact
  std::uint64_t overflow_min_tick_ = ~std::uint64_t{0};  // lower bound
  std::size_t armed_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
  std::size_t overflow_count_ = 0;
};

// --- inline hot path (one arm per protocol timer per fire) -----------------

inline std::uint32_t TimerWheel::alloc_record() {
  ++live_;
  if (live_ > peak_live_) peak_live_ = live_;
  if (free_head_ != kNull) {
    const std::uint32_t index = free_head_;
    free_head_ = records_[index].next;
    records_[index].next = kNull;
    return index;
  }
  // Strided append: a fresh wheel's (0, stride 1) cursor is exactly
  // push_back; a partition importer appends on its own residue class so
  // sibling wheels can be merged back losslessly. Gap records created by
  // the resize stay kFree at generation 0 and are never linked anywhere.
  const std::uint32_t index = alloc_next_;
  alloc_next_ += alloc_stride_;
  if (index >= records_.size()) records_.resize(std::size_t(index) + 1);
  return index;
}

inline void TimerWheel::link(std::uint32_t index, std::uint32_t list) {
  Record& r = records_[index];
  r.list = list;
  r.prev = kNull;
  r.next = heads_[list];
  if (r.next != kNull) records_[r.next].prev = index;
  heads_[list] = index;
  ++armed_;
  if (list < kSlotLists) {
    occupied_[list / kSlots] |= 1ull << (list % kSlots);
  } else if (list == kOverflowList) {
    ++overflow_count_;
  }
}

inline void TimerWheel::place(std::uint32_t index, std::vector<Due>* out) {
  Record& r = records_[index];
  const std::uint64_t when_tick = tick_of(r.when);
  if (when_tick <= tick_) {
    // Due (or zero-delay). Draining: straight into the batch. Scheduling:
    // stage on the ready list; the next advance() hands it to the engine.
    // It never silently disappears either way.
    if (out != nullptr) {
      r.list = kInHeap;
      out->push_back(Due{r.when, EventKey{r.creator, r.seq},
                         TimerHandle{index, r.generation}});
      return;
    }
    ready_min_ = std::min(ready_min_, r.when);
    if (next_due_valid_ && r.when < next_due_cache_) next_due_cache_ = r.when;
    link(index, kReadyList);
    return;
  }
  // Level = position of the highest bit where the target tick differs from
  // the current tick (the Tokio formulation). Unlike a raw log2 of the
  // delta, this guarantees the slot is STRICTLY ahead of the level's
  // current slot in the same rotation — the invariant earliest_slot() and
  // the no-wrap scan rely on. A difference above the top level (a target in
  // another kSlots^kLevels span) parks on the overflow list.
  const std::uint64_t distinct = (tick_ ^ when_tick) | (kSlots - 1);
  const std::uint32_t level =
      (63u - std::uint32_t(std::countl_zero(distinct))) / kSlotBits;
  if (level >= kLevels) {
    overflow_min_tick_ = std::min(overflow_min_tick_, when_tick);
    if (next_due_valid_) {
      next_due_cache_ =
          std::min(next_due_cache_,
                   RealTime{std::int64_t(overflow_min_tick_ << kTickShift)});
    }
    link(index, kOverflowList);
    return;
  }
  const std::uint32_t slot =
      std::uint32_t(when_tick >> (kSlotBits * level)) & (kSlots - 1);
  // The slot's start tick is the record's lower bound — min-merge it into
  // the next-due cache so next_due() stays O(1).
  if (next_due_valid_) {
    const std::uint64_t start = (when_tick >> (kSlotBits * level))
                                << (kSlotBits * level);
    next_due_cache_ = std::min(next_due_cache_,
                               RealTime{std::int64_t(start << kTickShift)});
  }
  link(index, level * kSlots + slot);
}

inline TimerHandle TimerWheel::schedule(RealTime when, EventKey key,
                                        NodeId node, std::uint64_t cookie) {
  const std::uint32_t index = alloc_record();
  Record& r = records_[index];
  r.when = when;
  r.seq = key.seq;
  r.creator = key.creator;
  r.node = node;
  r.cookie = cookie;
  place(index, nullptr);
  return TimerHandle{index, r.generation};
}

/// Engine drain-loop policy, shared by the serial World and each Shard so
/// the subtle bound choice lives in exactly one place: returns the time to
/// advance the wheel to before the next dispatch, or RealTime::max() when
/// no pump is needed. Pump when the wheel's next-due lower bound does not
/// exceed the next heap event or the loop's limit (run target / window
/// end). Bound: everything the next dispatch could need — but with an
/// empty queue, only the wheel's own next slot; pulling further ahead
/// would re-inflate the heap the wheel exists to keep small.
[[nodiscard]] inline RealTime timer_pump_bound(const EventQueue& queue,
                                              const TimerWheel& timers,
                                              RealTime limit) {
  const RealTime next_event =
      queue.empty() ? RealTime::max() : queue.next_time();
  const RealTime next_timer = timers.next_due();  // lower bound
  if (next_timer > next_event || next_timer > limit) return RealTime::max();
  return queue.empty() ? next_timer : std::min(next_event, limit);
}

}  // namespace ssbft
