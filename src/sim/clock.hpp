// Drifting local clock (paper Def. 1, Bounded Drift).
//
//   τ(t) = offset + rate · t        with rate ∈ [1−ρ, 1+ρ]
//
// Offsets are arbitrary — after a transient fault nodes share no time
// reference whatsoever (§2), and the fault injector may re-randomize the
// offset at any point. The paper allows local time to wrap; we document the
// paper's own assumption instead: the wrap-around period exceeds a constant
// factor of the longest interval ever measured, so 63 bits of nanoseconds
// (≈292 years) trivially satisfies it at experiment scale.
#pragma once

#include "util/assert.hpp"
#include "util/time.hpp"

namespace ssbft {

class DriftingClock {
 public:
  DriftingClock() = default;

  /// rate must lie in (0, 2); protocol guarantees only hold for
  /// rate ∈ [1−ρ, 1+ρ], but a *faulty* node's clock may be anything.
  DriftingClock(double rate, Duration offset) : rate_(rate), offset_(offset) {
    SSBFT_EXPECTS(rate > 0.0);
  }

  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] Duration offset() const { return offset_; }

  void set_offset(Duration offset) { offset_ = offset; }
  void set_rate(double rate) {
    SSBFT_EXPECTS(rate > 0.0);
    rate_ = rate;
  }

  /// Local reading at real time t.
  [[nodiscard]] LocalTime local_at(RealTime t) const {
    return LocalTime{offset_.ns() + scale(t.ns(), rate_)};
  }

  /// Earliest real time at which the local reading is >= `tau`.
  /// (Inverse of local_at up to integer rounding; local_at(real_at(τ)) ≥ τ.)
  [[nodiscard]] RealTime real_at(LocalTime tau) const {
    const std::int64_t delta = tau.ns() - offset_.ns();
    return RealTime{scale_up(delta, 1.0 / rate_)};
  }

  /// A local-duration measured on this clock corresponding to real duration.
  [[nodiscard]] Duration local_duration(Duration real) const {
    return Duration{scale(real.ns(), rate_)};
  }

 private:
  static std::int64_t scale(std::int64_t ns, double rate) {
    return static_cast<std::int64_t>(double(ns) * rate);
  }
  static std::int64_t scale_up(std::int64_t ns, double inv_rate) {
    const double v = double(ns) * inv_rate;
    auto r = static_cast<std::int64_t>(v);
    if (double(r) < v) ++r;
    return r;
  }

  double rate_ = 1.0;
  Duration offset_{};
};

}  // namespace ssbft
