#include "sim/tap.hpp"

namespace ssbft {

const char* to_string(TapEvent::Kind kind) {
  switch (kind) {
    case TapEvent::Kind::kSent: return "sent";
    case TapEvent::Kind::kDelivered: return "delivered";
    case TapEvent::Kind::kDropped: return "dropped";
    case TapEvent::Kind::kForged: return "forged";
    case TapEvent::Kind::kRejected: return "rejected";
  }
  return "?";
}

std::string to_string(const TapEvent& event) {
  char head[96];
  std::snprintf(head, sizeof head, "[%12.6fms %-9s %2d -> %2d] ",
                event.at.millis(), to_string(event.kind),
                event.from == kNoNode ? -1 : int(event.from),
                event.to == kNoNode ? -1 : int(event.to));
  return std::string(head) + to_string(event.msg);
}

void TraceRecorder::record(const TapEvent& event) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

void TraceRecorder::clear() {
  events_.clear();
  dropped_ = 0;
}

std::vector<TapEvent> TraceRecorder::filter(
    const std::function<bool(const TapEvent&)>& pred) const {
  std::vector<TapEvent> out;
  for (const auto& event : events_) {
    if (pred(event)) out.push_back(event);
  }
  return out;
}

std::size_t TraceRecorder::count(TapEvent::Kind kind, MsgKind msg_kind) const {
  std::size_t total = 0;
  for (const auto& event : events_) {
    if (event.kind == kind && event.msg.kind == msg_kind) ++total;
  }
  return total;
}

}  // namespace ssbft
