// Node abstraction: the boundary between the simulator and any protocol.
//
// A NodeBehavior sees only what a real process would see — its own id, its
// own (drifting) local clock, message arrivals, and timers it set itself.
// Real time exists solely on the simulator side of this interface; that is
// what makes the self-stabilization claims honest to measure.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/wire.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace ssbft {

/// Per-node services provided by the World. Lifetime: owned by the World,
/// outlives every behavior attached to the node.
class NodeContext {
 public:
  virtual ~NodeContext() = default;

  [[nodiscard]] virtual NodeId id() const = 0;
  [[nodiscard]] virtual std::uint32_t n() const = 0;

  /// This node's current timer reading τ.
  [[nodiscard]] virtual LocalTime local_now() const = 0;

  /// Unicast. The network stamps the true sender (authenticated channel,
  /// Def. 2.2) — a Byzantine node may lie about *content* but not identity.
  virtual void send(NodeId dest, WireMessage msg) = 0;

  /// "send to all" in the paper's sense: every node including self, each
  /// copy subject to independent network delay.
  virtual void send_all(WireMessage msg) = 0;

  /// Fire on_timer(cookie) when the local clock reads `when` (or immediately
  /// if already past). Returns a handle for cancel_timer/reschedule_timer.
  /// Handlers must still tolerate stale fires — a transient fault can erase
  /// the handle a node meant to cancel with.
  virtual TimerHandle set_timer(LocalTime when, std::uint64_t cookie) = 0;
  virtual TimerHandle set_timer_after(Duration local_delay,
                                      std::uint64_t cookie) = 0;

  /// Cancel an armed timer: O(1), true iff it will now never fire. Safe on
  /// invalid, stale, fired, and already-cancelled handles (returns false).
  virtual bool cancel_timer(TimerHandle handle) = 0;

  /// Cancel-and-rearm in one call; returns the new handle. The old handle
  /// may be invalid/stale (the rearm still happens).
  TimerHandle reschedule_timer(TimerHandle handle, LocalTime when,
                               std::uint64_t cookie) {
    cancel_timer(handle);
    return set_timer(when, cookie);
  }

  virtual Rng& rng() = 0;
  virtual Logger& log() = 0;
};

/// A protocol (or adversary) running on one node.
class NodeBehavior {
 public:
  virtual ~NodeBehavior() = default;

  virtual void on_start(NodeContext&) {}
  virtual void on_message(NodeContext&, const WireMessage&) = 0;
  virtual void on_timer(NodeContext&, std::uint64_t /*cookie*/) {}

  /// Transient-fault hook: overwrite all protocol state with adversarially
  /// chosen garbage. Default: stateless behavior, nothing to scramble.
  virtual void scramble(NodeContext&, Rng&) {}

  /// Engine-migration hook (sim/duty_world.hpp): this node's NodeContext
  /// OBJECT is being replaced — the behavior now lives on another engine
  /// and the old context is about to be destroyed, possibly many times
  /// over one run (recurring chaos alternates engines at every window
  /// edge). A behavior that caches the context pointer from on_start must
  /// re-point it here (and forward to embedded sub-behaviors). Protocol
  /// state must NOT change: the migration is invisible to the protocol by
  /// construction. Default: no cached context, nothing to rebind.
  virtual void rebind(NodeContext&) {}
};

}  // namespace ssbft
