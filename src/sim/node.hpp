// Node abstraction: the boundary between the simulator and any protocol.
//
// A NodeBehavior sees only what a real process would see — its own id, its
// own (drifting) local clock, message arrivals, and timers it set itself.
// Real time exists solely on the simulator side of this interface; that is
// what makes the self-stabilization claims honest to measure.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/wire.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace ssbft {

/// Per-node services provided by the World. Lifetime: owned by the World,
/// outlives every behavior attached to the node.
class NodeContext {
 public:
  virtual ~NodeContext() = default;

  [[nodiscard]] virtual NodeId id() const = 0;
  [[nodiscard]] virtual std::uint32_t n() const = 0;

  /// This node's current timer reading τ.
  [[nodiscard]] virtual LocalTime local_now() const = 0;

  /// Unicast. The network stamps the true sender (authenticated channel,
  /// Def. 2.2) — a Byzantine node may lie about *content* but not identity.
  virtual void send(NodeId dest, WireMessage msg) = 0;

  /// "send to all" in the paper's sense: every node including self, each
  /// copy subject to independent network delay.
  virtual void send_all(WireMessage msg) = 0;

  /// Fire on_timer(cookie) when the local clock reads `when` (or immediately
  /// if already past). Timers are not cancellable; handlers must tolerate
  /// stale fires — which they must anyway, under the transient-fault model.
  virtual void set_timer(LocalTime when, std::uint64_t cookie) = 0;
  virtual void set_timer_after(Duration local_delay, std::uint64_t cookie) = 0;

  virtual Rng& rng() = 0;
  virtual Logger& log() = 0;
};

/// A protocol (or adversary) running on one node.
class NodeBehavior {
 public:
  virtual ~NodeBehavior() = default;

  virtual void on_start(NodeContext&) {}
  virtual void on_message(NodeContext&, const WireMessage&) = 0;
  virtual void on_timer(NodeContext&, std::uint64_t /*cookie*/) {}

  /// Transient-fault hook: overwrite all protocol state with adversarially
  /// chosen garbage. Default: stateless behavior, nothing to scramble.
  virtual void scramble(NodeContext&, Rng&) {}
};

}  // namespace ssbft
