// Deterministic discrete-event queue.
//
// Events at equal real-time are dispatched in insertion order (a strictly
// monotone sequence number breaks ties), so a run is a pure function of the
// seed — a property every test and bench in this repository leans on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace ssbft {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` at absolute real-time `when`. `when` must not precede
  /// the last dispatched event (no time travel).
  void schedule(RealTime when, Action action);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Real-time of the next event; EXPECTS non-empty.
  [[nodiscard]] RealTime next_time() const;

  /// Dispatch the next event, advancing `now()` to its time.
  void run_one();

  /// Dispatch all events with time <= deadline (inclusive); `now()` ends at
  /// max(now, deadline).
  void run_until(RealTime deadline);

  /// Current simulation time (time of the last dispatched event).
  [[nodiscard]] RealTime now() const { return now_; }

  /// Number of events dispatched so far.
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct Entry {
    RealTime when;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  RealTime now_{};
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace ssbft
