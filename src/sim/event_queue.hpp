// Deterministic discrete-event queue over a slab-backed event store.
//
// Events are dispatched in (when, creator, seq) order: equal real-times are
// broken by a *content-based* EventKey — the id of the node (or world) that
// caused the event plus a per-creator monotone sequence — never by global
// insertion order. A per-creator key is reproducible without knowing the
// global schedule, which is what lets the sharded engine (sim/shard_world)
// dispatch the exact serial order while executing shards concurrently: each
// creator's handlers run in the same relative order on any engine, so each
// creator mints the same key sequence. Events scheduled through the key-less
// overload (workload injections, tests, tools) share one world-level creator
// with an internal counter and thus keep plain insertion-order semantics
// among themselves. A run remains a pure function of the seed either way.
//
// Hot-path layout: the priority heap orders 24-byte POD entries
// (when, seq, creator, slot) while the callables themselves live in
// fixed-size slots
// of a slab recycled through a free list. A callable whose closure fits
// kInlineCapacity is stored inline — scheduling and dispatching it performs
// no heap allocation on the steady path (the slab and heap vectors only
// grow until they cover the peak in-flight population). Oversized closures
// are boxed transparently. Dispatch pops by *move*: the callable is
// relocated to the stack frame and its slot freed before it runs, so
// running events may freely schedule new ones (even reallocating the slab)
// without invalidating themselves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace ssbft {

/// Creator id for events not attributable to one node (workload injections,
/// tests). Sorts after every node at equal times.
inline constexpr std::uint32_t kGlobalCreator = ~std::uint32_t{0};

/// Creator id for fault-injector forged deliveries (inject_raw). A reserved
/// channel — not insertion order — so a forged delivery dispatches at the
/// same point of the total order on every engine (serial, sharded, and the
/// chaos-prefix handoff between them). Sorts after every node but before
/// the world-level creator at equal times.
inline constexpr std::uint32_t kForgedCreator = ~std::uint32_t{0} - 1;

/// Content-based tie-break key: who caused the event, and which of that
/// creator's scheduled events it is. Both simulation engines mint identical
/// keys for identical histories, so dispatch order is engine-independent.
/// `seq` namespaces must be disjoint per creator across schedule paths (the
/// engines use even seqs for network deliveries, odd for timers).
struct EventKey {
  std::uint32_t creator = kGlobalCreator;
  std::uint64_t seq = 0;
};

class EventQueue {
 public:
  /// Closures up to this size (and std::max_align_t alignment) are stored
  /// inline in a slab slot; larger ones fall back to one boxed allocation.
  /// 192 bytes covers every closure the simulator schedules on its hot path
  /// (the largest is a network delivery: this + destination + WireMessage,
  /// whose payload handle carries an inline body up to one cacheline —
  /// pooled bodies ride as a slot reference, so the closure stays flat).
  static constexpr std::size_t kInlineCapacity = 192;

  EventQueue() = default;
  ~EventQueue() { clear(); }

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `action` (any void() callable, move-only allowed) at absolute
  /// real-time `when` under the world-level creator (insertion-ordered among
  /// key-less events). `when` must not precede the last dispatched event
  /// (no time travel).
  template <class F>
  void schedule(RealTime when, F&& action) {
    schedule(when, EventKey{kGlobalCreator, global_seq_++},
             std::forward<F>(action));
  }

  /// Schedule with an explicit creator key (see EventKey). The caller owns
  /// the per-creator seq discipline: keys must be unique and, per creator,
  /// minted in monotone order.
  template <class F>
  void schedule(RealTime when, EventKey key, F&& action) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      SSBFT_EXPECTS(when >= now_);
      const std::uint32_t index = acquire_slot();
      Slot& target = slot(index);
      ::new (static_cast<void*>(target.storage)) Fn(std::forward<F>(action));
      target.ops = &ops_for<Fn>();
      push_entry(Entry{when, key.seq, key.creator, index});
    } else {
      // Box the oversized closure; the slot then holds only the pointer.
      schedule(when, key,
               Boxed<Fn>{std::make_unique<Fn>(std::forward<F>(action))});
    }
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Real-time of the next event; EXPECTS non-empty.
  [[nodiscard]] RealTime next_time() const {
    SSBFT_EXPECTS(!heap_.empty());
    return heap_.front().when;
  }

  /// Dispatch the next event, advancing `now()` to its time.
  void run_one();

  /// Dispatch all events with time <= deadline (inclusive); `now()` ends at
  /// max(now, deadline).
  void run_until(RealTime deadline);

  /// Current simulation time (time of the last dispatched event).
  [[nodiscard]] RealTime now() const { return now_; }

  /// Stable pointer to the clock, for observers that sample it across many
  /// dispatches (the tracer's armed Scope). Valid for the queue's lifetime.
  [[nodiscard]] const RealTime* now_ptr() const { return &now_; }

  /// Number of events dispatched so far.
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

  /// Position of the world-level creator's counter (the seq the next
  /// key-less schedule will mint). The chaos-prefix handoff transplants it
  /// so the sharded suffix continues the exact key sequence.
  [[nodiscard]] std::uint64_t global_seq() const { return global_seq_; }

  /// Adopt the clock/counter positions of a migrated run (engine handoff).
  /// Only legal on a pristine queue — nothing scheduled or dispatched yet —
  /// so the adopted positions cannot contradict prior activity.
  void adopt(RealTime now, std::uint64_t global_seq, std::uint64_t dispatched) {
    SSBFT_EXPECTS(heap_.empty() && now_ == RealTime{} && global_seq_ == 0 &&
                  dispatched_ == 0);
    now_ = now;
    global_seq_ = global_seq;
    dispatched_ = dispatched;
  }

  /// Slab slots currently allocated (diagnostics; peak in-flight events,
  /// rounded up to whole chunks).
  [[nodiscard]] std::size_t slab_capacity() const {
    return slab_.size() * kSlotChunk;
  }

  /// Bytes resident in the queue's backing stores (closure slab + heap
  /// array). Both structures are grow-only, so the current footprint IS
  /// the peak footprint — no per-operation tracking needed.
  [[nodiscard]] std::size_t peak_bytes() const {
    return slab_capacity() * sizeof(Slot) + heap_.capacity() * sizeof(Entry);
  }

 private:
  static constexpr std::uint32_t kNullSlot = ~std::uint32_t{0};

  /// Type-erased operations on a stored callable. One static table per
  /// closure type — the slab slots stay POD-sized.
  struct Ops {
    /// Pop-by-move dispatch: move the callable out of its slot into the
    /// dispatch frame, destroy the slot copy, recycle the slot, then run.
    /// Fused into one type-specific function so the whole pop path is a
    /// single indirect call (and a plain memcpy for trivial closures).
    void (*run)(EventQueue& queue, std::uint32_t slot);
    void (*destroy)(void* obj);
  };

  template <class Fn>
  [[nodiscard]] static const Ops& ops_for() {
    static constexpr Ops ops{
        [](EventQueue& queue, std::uint32_t index) {
          Slot& slot = queue.slot(index);
          Fn* stored = std::launder(reinterpret_cast<Fn*>(slot.storage));
          Fn local(std::move(*stored));
          stored->~Fn();
          // Slot recycled before dispatch: the action may schedule freely
          // (even growing the slab) without invalidating itself.
          queue.release_slot(index);
          local();
        },
        [](void* obj) { std::launder(reinterpret_cast<Fn*>(obj))->~Fn(); }};
    return ops;
  }

  /// Fallback holder for closures above kInlineCapacity.
  template <class Fn>
  struct Boxed {
    std::unique_ptr<Fn> fn;
    void operator()() { (*fn)(); }
  };

  struct Slot {
    alignas(alignof(std::max_align_t)) std::byte storage[kInlineCapacity];
    const Ops* ops = nullptr;
    std::uint32_t next_free = kNullSlot;
  };

  // Slots live in fixed chunks so their addresses are STABLE while events
  // are pending: growing the slab must never relocate a live stored
  // closure (a byte-wise vector reallocation would bypass its move
  // constructor — undefined behavior for self-referential captures like an
  // SSO std::string). One allocation per kSlotChunk slots at warm-up, none
  // steady-state.
  static constexpr std::uint32_t kSlotChunk = 64;
  struct SlotChunk {
    Slot slots[kSlotChunk];
  };

  [[nodiscard]] Slot& slot(std::uint32_t index) {
    return slab_[index / kSlotChunk]->slots[index % kSlotChunk];
  }

  /// Heap entry: trivially copyable, so sifts are plain word moves. Still
  /// 24 bytes: the creator id rides in what used to be padding.
  struct Entry {
    RealTime when;
    std::uint64_t seq;
    std::uint32_t creator;
    std::uint32_t slot;
  };

  [[nodiscard]] static bool earlier(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.creator != b.creator) return a.creator < b.creator;
    return a.seq < b.seq;
  }

  [[nodiscard]] std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);
  void push_entry(Entry entry);
  [[nodiscard]] Entry pop_entry();
  void clear();

  std::vector<std::unique_ptr<SlotChunk>> slab_;
  std::uint32_t free_head_ = kNullSlot;
  std::vector<Entry> heap_;  // binary min-heap over (when, creator, seq)
  RealTime now_{};
  std::uint64_t global_seq_ = 0;  // world-level creator's counter
  std::uint64_t dispatched_ = 0;
};

}  // namespace ssbft
