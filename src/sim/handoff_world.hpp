// HandoffWorld: two-phase engine for chaos/stabilization scenarios.
//
// The paper's experiments of interest start with a transient chaos window
// [0, ι0) — the network drops, corrupts, duplicates, and arbitrarily delays
// — and then measure how the stack stabilizes once the network turns
// non-faulty. Chaos is inherently a serial-engine phase (its unbounded
// delays undercut any conservative lookahead, and the chaos machinery lives
// in the serial Network); the stabilization phase is exactly where the
// windowed ShardWorld scales. Pinning the WHOLE run to the serial engine
// because of the prefix (the pre-handoff behavior) wasted the phase we most
// want to measure at scale.
//
// This wrapper runs the prefix [0, handoff_at) on the serial World, then
// migrates the complete simulation state into a ShardWorld and runs the
// suffix windowed:
//   * pending deliveries (chaos-delayed, duplicated, forged) re-materialize
//     in their destination shard's queue with their original content-based
//     (when, creator, seq) keys — the serial Network tracks them in a side
//     slab (enable_handoff_export) precisely because slab-queue closures
//     cannot be extracted once type-erased;
//   * live timer records re-arm at their original (index, generation)
//     tickets in the owning shard's wheel, so TimerHandles held inside
//     behaviors survive the engine swap;
//   * per-node behavior/clock state moves wholesale; every RNG stream
//     (behavior, per-sender link, world) and every key-channel counter
//     (even network, odd timer, forged, world) continues at its exact
//     position.
// The cut is exclusive — all events strictly before handoff_at dispatch on
// the serial engine — so the suffix dispatches the identical total order an
// all-serial run would, and run digests are bit-identical (test_shard's
// chaos matrix × all six StackKinds × shards {1, 2, 4}).
//
// Pre-handoff the serial surface (network(), queue()) forwards; after the
// migration it aborts exactly like ShardWorld's. schedule() is registered
// here (not just forwarded) so still-pending workload injections can follow
// the migration: their closures are engine-agnostic, only their queue
// residence is not.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "sim/shard_world.hpp"
#include "sim/world.hpp"

namespace ssbft {

class HandoffWorld final : public WorldBase {
 public:
  /// `handoff_at` is the chaos end ι0 (Network::faulty_until): the instant
  /// the serial prefix hands over. `config.shards` shapes the suffix engine.
  HandoffWorld(WorldConfig config, RealTime handoff_at);
  ~HandoffWorld() override;

  [[nodiscard]] RealTime handoff_at() const { return handoff_at_; }
  /// Has the migration happened yet? (Diagnostics/tests.)
  [[nodiscard]] bool handed_off() const { return sharded_ != nullptr; }
  /// The suffix engine, post-handoff only (tests).
  [[nodiscard]] ShardWorld* suffix() { return sharded_.get(); }

  void set_behavior(NodeId id, std::unique_ptr<NodeBehavior> behavior) override;
  [[nodiscard]] NodeBehavior* behavior(NodeId id) override;
  void start() override;

  void run_until(RealTime t) override;
  void run_to_quiescence(RealTime hard_deadline) override;

  [[nodiscard]] RealTime now() const override;
  [[nodiscard]] LocalTime local_now(NodeId id) const override;
  [[nodiscard]] RealTime real_at(NodeId id, LocalTime tau) const override;

  [[nodiscard]] DriftingClock& clock(NodeId id) override;
  [[nodiscard]] Rng& rng() override;
  [[nodiscard]] Logger& log() override;

  void scramble_node(NodeId id) override;

  void schedule(RealTime when, NodeId target,
                std::function<void()> action) override;
  void inject_raw(NodeId dest, WireMessage msg, Duration delay) override;

  [[nodiscard]] NetworkStats net_stats() const override;
  [[nodiscard]] std::uint64_t dispatched() const override;

  /// Serial surface: forwards during the prefix, aborts after the handoff
  /// (the suffix has no single Network/queue).
  [[nodiscard]] Network& network() override;
  [[nodiscard]] EventQueue& queue() override;

 private:
  [[nodiscard]] WorldBase& active();
  [[nodiscard]] const WorldBase& active() const;

  /// Cross the cut: drain the prefix (everything strictly before
  /// handoff_at_), export, adopt. Idempotent via serial_ == nullptr.
  void migrate();

  RealTime handoff_at_;
  std::unique_ptr<World> serial_;        // prefix engine; null after handoff
  std::unique_ptr<ShardWorld> sharded_;  // suffix engine; null before

  // Workload actions scheduled through us, keyed by the world-channel seq
  // the serial queue minted for them (deterministic iteration order). An
  // action unregisters itself when it runs; whatever remains at the cut
  // migrates into the suffix engine with its original key.
  std::map<std::uint64_t, WorldMigration::PendingAction> actions_;
};

}  // namespace ssbft
