#include "sim/payload.hpp"

#include "util/assert.hpp"

namespace ssbft {

PayloadPool& payload_pool() {
  static PayloadPool pool;
  return pool;
}

std::uint64_t payload_fnv(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint32_t PayloadPool::acquire(const void* data, std::uint32_t size) {
  SSBFT_EXPECTS(size > 0);
  std::uint32_t index;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (free_head_ != kNullSlot) {
      index = free_head_;
      free_head_ = slot(index).next_free;
    } else {
      chunks_.push_back(std::make_unique<Chunk>());
      const std::uint32_t base =
          std::uint32_t(chunks_.size() - 1) * kSlotChunk;
      // Thread slots [base+1, base+kSlotChunk) onto the free list; hand
      // out the first one.
      for (std::uint32_t i = kSlotChunk; i-- > 1;) {
        slot(base + i).next_free = free_head_;
        free_head_ = base + i;
      }
      index = base;
    }
    Slot& s = slot(index);
    SSBFT_ASSERT(s.refs.load(std::memory_order_relaxed) == 0);
    if (s.capacity < size) {
      s.bytes = std::make_unique<std::uint8_t[]>(size);
      s.capacity = size;
    }
    std::memcpy(s.bytes.get(), data, size);
    s.size = size;
    s.checksum = payload_fnv(data, size);
    s.refs.store(1, std::memory_order_release);
  }
  live_.fetch_add(1, std::memory_order_relaxed);
  bytes_copied_.fetch_add(size, std::memory_order_relaxed);
  const std::uint64_t resident =
      resident_bytes_.fetch_add(size, std::memory_order_relaxed) + size;
  std::uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (resident > peak &&
         !peak_bytes_.compare_exchange_weak(peak, resident,
                                            std::memory_order_relaxed)) {
  }
  return index;
}

void PayloadPool::add_ref(std::uint32_t index) {
  slot(index).refs.fetch_add(1, std::memory_order_relaxed);
}

void PayloadPool::release(std::uint32_t index) {
  Slot& s = slot(index);
  if (s.refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.next_free = free_head_;
    free_head_ = index;
  }
  live_.fetch_sub(1, std::memory_order_relaxed);
  resident_bytes_.fetch_sub(s.size, std::memory_order_relaxed);
}

const std::uint8_t* PayloadPool::data(std::uint32_t index) const {
  return slot(index).bytes.get();
}

std::uint32_t PayloadPool::size(std::uint32_t index) const {
  return slot(index).size;
}

std::uint64_t PayloadPool::checksum(std::uint32_t index) const {
  return slot(index).checksum;
}

Payload::Payload(const void* data, std::uint32_t size) : size_(size) {
  if (size_ == 0) return;
  if (size_ <= kInlineCapacity) {
    std::memcpy(inline_, data, size_);
    checksum_ = payload_fnv(data, size_);
    return;
  }
  slot_ = payload_pool().acquire(data, size_);
  checksum_ = payload_pool().checksum(slot_);
}

Payload::Payload(const Payload& other)
    : size_(other.size_), slot_(other.slot_), checksum_(other.checksum_) {
  if (pooled()) {
    payload_pool().add_ref(slot_);
  } else if (size_ > 0) {
    std::memcpy(inline_, other.inline_, size_);
  }
}

Payload& Payload::operator=(const Payload& other) {
  if (this == &other) return *this;
  // Ref the source before releasing ours: self-aliasing through distinct
  // handles to the same slot must not bounce the refcount through zero.
  if (other.pooled()) payload_pool().add_ref(other.slot_);
  reset();
  size_ = other.size_;
  slot_ = other.slot_;
  checksum_ = other.checksum_;
  if (!pooled() && size_ > 0) std::memcpy(inline_, other.inline_, size_);
  return *this;
}

Payload::Payload(Payload&& other) noexcept
    : size_(other.size_), slot_(other.slot_), checksum_(other.checksum_) {
  if (!pooled() && size_ > 0) std::memcpy(inline_, other.inline_, size_);
  other.slot_ = kNoSlot;
  other.size_ = 0;
  other.checksum_ = 0;
}

Payload& Payload::operator=(Payload&& other) noexcept {
  if (this == &other) return *this;
  reset();
  size_ = other.size_;
  slot_ = other.slot_;
  checksum_ = other.checksum_;
  if (!pooled() && size_ > 0) std::memcpy(inline_, other.inline_, size_);
  other.slot_ = kNoSlot;
  other.size_ = 0;
  other.checksum_ = 0;
  return *this;
}

void Payload::reset() {
  if (pooled()) payload_pool().release(slot_);
  slot_ = kNoSlot;
  size_ = 0;
  checksum_ = 0;
}

Payload make_patterned_payload(std::uint32_t size, std::uint64_t tag) {
  if (size == 0) return Payload{};
  std::vector<std::uint8_t> bytes(size);
  // splitmix64 stream seeded by the tag: cheap, stateless, identical on
  // every engine/thread for the same (size, tag).
  std::uint64_t x = tag + 0x9e3779b97f4a7c15ULL;
  for (std::uint32_t i = 0; i < size; ++i) {
    if (i % 8 == 0) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      tag = z ^ (z >> 31);
    }
    bytes[i] = std::uint8_t(tag >> ((i % 8) * 8));
  }
  return Payload{bytes.data(), size};
}

}  // namespace ssbft
