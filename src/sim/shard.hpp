// One shard of the conservative-parallel engine (sim/shard_world.hpp).
//
// A Shard owns a contiguous block of nodes: their clocks, behaviors,
// per-node RNG streams, its own slab EventQueue, wire counters, and one
// outbound mailbox per peer shard. During a lookahead window the shard
// dispatches its queue exactly like the serial engine dispatches the same
// subsequence — same (when, creator, seq) keys, same per-sender delay
// streams — while cross-shard sends are buffered in the mailboxes and
// drained by their destination shard at the window barrier. The bounded-
// delay model guarantees every cross-shard message lands at or after the
// next window, so no shard ever sees an event "from the past".
//
// Under ShardSched::kSteal the shard's pending work lives in PER-NODE
// event queues instead of the one central queue: within a window every
// node's work is independent (any send lands at or after the window end;
// only a node's own timers can create same-window work), so whole nodes
// are the unit idle workers steal. Per-node dispatch order is still exact
// (when, creator, seq) key order, which is all the digest can see.
// Under ShardSched::kLax cross-shard sends go straight into the
// destination's mutex-guarded inbox instead of waiting for the barrier,
// so receivers can run ahead on slack (see ShardWorld::run_windows).
//
// Engine-internal: user code deploys through Scenario/Cluster and only ever
// sees the WorldBase surface.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/auth.hpp"
#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"  // NetworkStats
#include "sim/node.hpp"
#include "sim/timer_wheel.hpp"
#include "sim/world.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace ssbft {

class ShardWorld;

class Shard {
 public:
  /// A cross-shard delivery waiting at the window barrier. Carries the full
  /// event key so the destination queue reproduces the serial dispatch
  /// order no matter which barrier inserted it.
  struct Pending {
    RealTime when;
    EventKey key;
    NodeId dest;
    WireMessage msg;
  };

  /// A batch of cross-shard deliveries moving between execution contexts
  /// under the engine's SPSC discipline: exactly one producer fills it
  /// (the sending shard inside a window, or one worker's private execution
  /// context under kSteal) and exactly one consumer drains it (the owning
  /// shard at a barrier, or under `exec_mutex_` for the lax inbox). Entries
  /// are MOVED through, never copied: a Pending's WireMessage holds its
  /// body as a refcounted pool handle (sim/payload.hpp), so the handoff
  /// transfers the reference instead of bouncing the slot's refcount — the
  /// pool slot filled at send() is the same one the destination behavior
  /// reads.
  class Mailbox {
   public:
    void push(Pending&& p) { items_.push_back(std::move(p)); }
    [[nodiscard]] bool empty() const { return items_.empty(); }
    /// Hand every buffered delivery to `sink` by move, then reset (the
    /// backing capacity is kept for the next window).
    template <typename Sink>
    void drain(Sink&& sink) {
      for (Pending& p : items_) sink(std::move(p));
      items_.clear();
    }
    /// O(1) handoff of the whole batch (the lax double-buffer swaps under
    /// the mutex, then drains outside it).
    void swap(Mailbox& other) noexcept { items_.swap(other.items_); }

   private:
    std::vector<Pending> items_;
  };

  Shard(ShardWorld& world, std::uint32_t index, std::uint32_t shard_count,
        NodeId first_node, NodeId end_node);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  [[nodiscard]] std::uint32_t index() const { return index_; }
  [[nodiscard]] bool owns(NodeId id) const {
    return id >= first_node_ && id < end_node_;
  }
  [[nodiscard]] NodeId first_node() const { return first_node_; }
  [[nodiscard]] NodeId end_node() const { return end_node_; }

  // --- node surface (delegated from ShardWorld; serial phases only) -------
  void set_behavior(NodeId id, std::unique_ptr<NodeBehavior> behavior,
                    bool started);
  [[nodiscard]] NodeBehavior* behavior(NodeId id);
  void start_node(NodeId id);
  void scramble_node(NodeId id);
  [[nodiscard]] DriftingClock& clock(NodeId id);

  // --- engine surface -----------------------------------------------------
  [[nodiscard]] EventQueue& queue() { return queue_; }
  [[nodiscard]] const EventQueue& queue() const { return queue_; }
  /// Queue dispatches net of suppressed (cancelled-after-hand-over) timer
  /// pops — the engine-invariant event count (see World::dispatched).
  [[nodiscard]] std::uint64_t dispatched() const;
  [[nodiscard]] Logger& log() { return logger_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }

  /// Earliest pending event across this shard's queue(s) — the central
  /// queue, or the per-node queues under kSteal (max() when none). The
  /// window planner folds this into its earliest-event fast-forward.
  [[nodiscard]] RealTime next_pending_time() const;
  /// Advance every queue clock to `t` (serial run_until semantics; nothing
  /// at or before `t` may remain pending).
  void advance_queues(RealTime t);
  /// Latest dispatch clock across this shard's queue(s).
  [[nodiscard]] RealTime last_queue_now() const;

  /// Dispatch this shard's events with `when < end` (or `<= end` when
  /// `inclusive`); the window loop's per-shard work item. Due wheel timers
  /// are handed to the queue between dispatches, inside the window.
  /// Central-queue modes only (static/balance/lax).
  void process_until(RealTime end, bool inclusive);

  /// Lower bound on this shard's earliest pending wheel timer (max() when
  /// none) — the window planner folds it into the earliest-event
  /// fast-forward so a timer-only shard is never skipped past.
  [[nodiscard]] RealTime next_timer_due() const { return timers_.next_due(); }

  /// Move every peer shard's mailbox addressed here into the local queue.
  /// Caller (the window barrier) guarantees the producers are parked.
  /// Under kSteal this also merges the per-worker execution outboxes, in
  /// worker order; under kLax it drains the mutex inbox's leftovers.
  void drain_inboxes();

  /// Schedule a delivery on THIS shard (dest must be owned). Used by the
  /// local send path, by drain_inboxes, and by ShardWorld for serial-phase
  /// cross-shard sends. Takes the message by value so in-engine callers can
  /// move the pool reference straight into the event closure. The
  /// authenticator check runs inside the closure, at the delivery instant,
  /// mirroring Network::schedule_delivery.
  void schedule_delivery(RealTime when, EventKey key, NodeId dest,
                         WireMessage msg);

  /// Fault-injector plant: deliver without the delivered/tap accounting,
  /// mirroring Network::inject_raw. Forged copies face the same delivery-
  /// instant authenticator check as authentic traffic.
  void schedule_forged(RealTime when, EventKey key, NodeId dest,
                       WireMessage msg);

  /// Park a world-level action for `target` in the queue that owns it (the
  /// central queue, or target's node queue under kSteal). Serial phases /
  /// barrier only.
  void schedule_action(RealTime when, EventKey key, NodeId target,
                       std::function<void()> action);

  // --- kSteal window machinery (see ShardWorld::run_windows) --------------

  /// Hand due wheel timers to the owning node queues and list every node
  /// with runnable work in [*, end] — the window's steal items. Runs at
  /// plan time (all workers parked).
  void build_steal_items(RealTime end, bool inclusive);
  [[nodiscard]] std::vector<NodeId>& steal_items() { return steal_items_; }
  /// Execute one node's whole window batch: its queue in key order up to
  /// the gate. Returns events dispatched. Caller owns the exec context.
  std::uint64_t run_node_window(NodeId id, RealTime end, bool inclusive);

  // --- kLax window machinery ----------------------------------------------

  /// Drain the mutex-guarded lax inbox into the local queue. Safe to call
  /// from this shard's worker mid-window (senders push under the mutex).
  void drain_lax_inbox();
  /// Push a delivery into this shard's lax inbox (called by PEER workers
  /// mid-window, under the mutex). Moves the pool reference in.
  void push_lax(Pending&& p);

  // --- engine-migration surface (serial segment ⇄ windowed segment) -------

  /// Install one migrated node: clock, behavior, RNG stream positions, and
  /// key-channel counters continue exactly where the serial prefix left
  /// them. on_start is NOT re-run (`state.started` carries over).
  void adopt_node(NodeId id, WorldMigration::NodeState&& state);

  /// Re-arm this shard's partition of the serial wheel's snapshot at the
  /// original (index, generation) tickets — behaviors' TimerHandles stay
  /// valid against their node's new wheel (TimerWheel::import_records).
  /// The wheel's future allocations are partitioned by (index_, shard
  /// count) so sibling shards' slabs stay disjoint and a later reverse
  /// merge is a plain concatenation.
  void import_timers(const std::vector<TimerWheel::ExportedRecord>& records,
                     const std::vector<std::uint32_t>& generations,
                     RealTime now);

  /// Track every scheduled delivery in a side slab so in-flight messages
  /// can be exported at the next cut (reverse migration) or repartition,
  /// mirroring Network::enable_handoff_export. Must precede all traffic on
  /// this shard; bit-identical to the untracked path. Idempotent (the
  /// adaptive scheduler pre-enables it; a DutyWorld may enable it again).
  void enable_handoff_export() {
    SSBFT_EXPECTS(stats_.sent == 0);
    handoff_export_ = true;
  }

  /// Append this shard's live in-flight deliveries (slab order), then seal
  /// the slab: any further traffic or dispatch is a precondition failure —
  /// the snapshot would be stale.
  void export_deliveries(std::vector<Network::PendingDelivery>& out);

  /// Snapshot this shard's live timer records + slab ticket map.
  void export_timers(std::vector<TimerWheel::ExportedRecord>& out,
                     std::vector<std::uint32_t>& generations) const {
    timers_.export_records(out, generations);
  }

  /// Strip one owned node into a migration slot (behavior moves out).
  void export_node(NodeId id, WorldMigration::NodeState& out);

 private:
  friend class ShardWorld;
  class ContextImpl;

  struct NodeSlot {
    DriftingClock clock;
    std::unique_ptr<NodeBehavior> behavior;
    std::unique_ptr<ContextImpl> context;
    Rng rng{0};       // behavior stream (seed, node)
    Rng link_rng{0};  // outgoing-delay stream (seed, node)
    std::uint64_t timer_seq = 0;  // odd-channel EventKey seqs
    std::uint64_t send_seq = 0;   // even-channel EventKey seqs
    bool started = false;
  };

  [[nodiscard]] NodeSlot& slot(NodeId id);

  /// Per-node queue under kSteal (the shard's own node only).
  [[nodiscard]] EventQueue& node_queue(NodeId id);
  /// The queue a delivery/timer/action for `dest` parks in: the central
  /// queue, or dest's node queue under kSteal.
  [[nodiscard]] EventQueue& dest_queue(NodeId dest);

  /// Wire counters for the CURRENT execution context: the per-worker stats
  /// while a steal window is executing (merged at the barrier), the
  /// shard's own otherwise.
  [[nodiscard]] NetworkStats& wire_stats();

  /// Authenticated send from an owned node: samples the sender's delay
  /// stream and routes locally, to a mailbox (inside a window), or straight
  /// into the destination shard (serial phases).
  void send(NodeId from, NodeId dest, WireMessage msg);
  void send_all(NodeId from, const WireMessage& msg);
  /// Sign-and-admit one copy with a route marker — the shared body of
  /// send() (kRouteDirect) and the topology fan-out (see Network::admit).
  void admit(NodeId from, NodeId dest, WireMessage msg, std::uint8_t route);
  /// Park one keyed delivery where it belongs: the steal-window outbox, the
  /// local queue, a peer's mailbox/lax inbox, or (serial phases) straight
  /// into the owning shard — the routing tail shared by admit() and
  /// relay().
  void dispatch_send(NodeId dest, RealTime when, EventKey key,
                     WireMessage msg);
  /// Relay duty at the delivery instant (mirrors Network::relay): forward a
  /// verified route-marked copy BEFORE the behavior sees it, preserving the
  /// origin's sender/tag, drawing delays and keys from the relay node's own
  /// streams.
  void relay(NodeId self, const WireMessage& msg);
  [[nodiscard]] Duration sample_delay(NodeSlot& from);

  void deliver(NodeId dest, const WireMessage& msg);

  /// Delivery-instant authenticator failure: count it (in the CURRENT
  /// execution context's counters) and emit the trace instant. The copy is
  /// discarded — the behavior never sees it.
  void reject(NodeId dest);

  [[nodiscard]] std::uint32_t track(const Network::PendingDelivery& pending);
  [[nodiscard]] Network::PendingDelivery untrack(std::uint32_t index);
  [[nodiscard]] Network::PendingDelivery untrack_unlocked(std::uint32_t index);

  /// Hand every wheel timer due at or before `bound` to the event queue.
  void pump_timers(RealTime bound);
  /// Scheduled-closure target: claim the record and run on_timer.
  void fire_timer(TimerHandle handle);

  ShardWorld& world_;
  std::uint32_t index_;
  NodeId first_node_;
  NodeId end_node_;
  bool steal_ = false;  // ShardSched::kSteal with >1 shard
  bool lax_ = false;    // ShardSched::kLax with >1 shard
  TopologyConfig topo_{};  // resolved dissemination overlay (default: flat)

  EventQueue queue_;
  /// kSteal only: one queue per owned node, indexed by id − first_node_.
  /// Empty in every other mode (the central queue_ serves).
  std::vector<EventQueue> node_queues_;
  std::vector<NodeId> steal_items_;  // nodes with work this window
  TimerWheel timers_;
  std::vector<TimerWheel::Due> due_batch_;  // advance() scratch, reused
  std::uint64_t suppressed_timers_ = 0;     // cancelled-after-hand-over pops
  Logger logger_;
  /// Same scheme + key as the serial Network's (both derive from the world
  /// seed), so a migrated run keeps verifying its own traffic.
  Authenticator auth_;
  NetworkStats stats_;
  std::vector<NodeSlot> slots_;  // [first_node_, end_node_)
  std::vector<Mailbox> outbox_;  // indexed by destination shard

  /// kSteal: serializes wheel arm/cancel/claim and tracking-slab untrack —
  /// a thief executing this shard's node touches them concurrently with
  /// the owner. kLax: guards lax_inbox_. Uncontended in other modes (never
  /// taken).
  std::mutex exec_mutex_;
  Mailbox lax_inbox_;   // kLax: mid-window cross-shard arrivals
  Mailbox lax_scratch_;  // drain double-buffer (keeps capacity)

  // Handoff-export tracking slab, mirroring Network's: `pending_live_`
  // marks occupied slots, dead slots wait on `pending_free_` for reuse,
  // `exported_` seals the slab once its contents migrated.
  bool handoff_export_ = false;
  bool exported_ = false;
  std::vector<Network::PendingDelivery> pending_;
  std::vector<bool> pending_live_;
  std::vector<std::uint32_t> pending_free_;
};

}  // namespace ssbft
