#include "util/logging.hpp"

namespace ssbft {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Logger::logf(LogLevel level, NodeId node, const char* fmt, ...) {
  if (!enabled(level)) return;
  std::fprintf(sink_, "[%12.6fms %-5s n%02u] ", now_.millis(), to_string(level),
               node);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(sink_, fmt, args);
  va_end(args);
  std::fputc('\n', sink_);
}

}  // namespace ssbft
