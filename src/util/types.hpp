// Core identifier and value types shared by every layer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace ssbft {

/// Dense node identifier in [0, n). The network authenticates it: a
/// non-faulty network never mis-attributes a sender (Def. 2.2).
using NodeId = std::uint32_t;

constexpr NodeId kNoNode = ~NodeId{0};

/// Agreement values. The paper treats `m` abstractly; a 64-bit payload is
/// enough to encode any test/bench workload, and keeps messages POD.
using Value = std::uint64_t;

/// Distinguished "null"/⊥ outcome of the agreement protocol.
constexpr Value kBottom = ~Value{0};

/// Ticket for one armed timer (NodeContext::set_timer). A handle is a plain
/// (slot, generation) value: cancelling a handle whose timer already fired,
/// was cancelled, or never existed is a safe no-op — which is exactly the
/// tolerance the transient-fault model demands (a scramble may leave a node
/// holding garbage handles). Default-constructed handles are invalid.
struct TimerHandle {
  std::uint32_t index = ~std::uint32_t{0};
  std::uint32_t generation = 0;

  [[nodiscard]] bool valid() const { return index != ~std::uint32_t{0}; }
  friend bool operator==(TimerHandle, TimerHandle) = default;
};

/// Identifies one agreement instance: the General that (allegedly)
/// initiated it, plus an invocation index. One ss-Byz-Agree instance runs
/// per (General, index) pair. Index 0 is the paper's base protocol (§3);
/// non-zero indices realize footnote 9: "One can expand the protocol to a
/// number of concurrent invocations by using an index to differentiate
/// among the concurrent invocations." Every per-instance data structure —
/// message logs, freshness windows, pacing state — is keyed by the full
/// pair, so each indexed instance converges independently.
struct GeneralId {
  NodeId node = kNoNode;
  std::uint32_t index = 0;

  friend bool operator==(GeneralId, GeneralId) = default;
  friend auto operator<=>(GeneralId, GeneralId) = default;
};

}  // namespace ssbft

template <>
struct std::hash<ssbft::GeneralId> {
  std::size_t operator()(const ssbft::GeneralId& g) const noexcept {
    const std::size_t h = std::hash<ssbft::NodeId>{}(g.node);
    // splitmix-style combine keeps (node, index) pairs well spread.
    return h ^ (std::hash<std::uint32_t>{}(g.index) + 0x9e3779b97f4a7c15ULL +
                (h << 6) + (h >> 2));
  }
};
