#include "util/rng.hpp"

#include <cmath>

namespace ssbft {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  SSBFT_EXPECTS(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  SSBFT_EXPECTS(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  if (span == 0) return static_cast<std::int64_t>(next_u64());
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return double(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

double Rng::next_exp_truncated(double mean, double cap) {
  SSBFT_EXPECTS(mean > 0 && cap >= 0);
  const double u = next_double();
  const double v = -mean * std::log1p(-u);
  return v > cap ? cap : v;
}

Rng Rng::split() { return Rng{next_u64() ^ 0xd6e8feb86659fd93ULL}; }

Rng Rng::stream(std::uint64_t seed, std::uint64_t domain, std::uint64_t index) {
  // Feed (seed, domain, index) through the splitmix64 permutation in turn:
  // each argument fully avalanches before the next mixes in, so adjacent
  // seeds/indices land in unrelated streams.
  std::uint64_t x = seed;
  std::uint64_t h = splitmix64(x);
  x = h ^ domain;
  h = splitmix64(x);
  x = h ^ index;
  return Rng{splitmix64(x)};
}

}  // namespace ssbft
