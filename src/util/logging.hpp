// Minimal leveled logger.
//
// The simulator is single-threaded by design (deterministic replay), so the
// logger needs no synchronization. Protocol modules log through a Logger
// reference owned by the World, which prefixes sim time and node id.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

#include "util/time.hpp"
#include "util/types.hpp"

namespace ssbft {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* to_string(LogLevel level);

class Logger {
 public:
  explicit Logger(LogLevel level = LogLevel::kWarn, std::FILE* sink = stderr)
      : level_(level), sink_(sink) {}

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_ && level_ != LogLevel::kOff; }

  /// Current simulation time for prefixing; the World updates this.
  void set_now(RealTime now) { now_ = now; }

  void logf(LogLevel level, NodeId node, const char* fmt, ...)
      __attribute__((format(printf, 4, 5)));

 private:
  LogLevel level_;
  std::FILE* sink_;
  RealTime now_{};
};

}  // namespace ssbft
