#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace ssbft {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / double(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ ? mean_ : 0; }

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / double(count_ - 1) : 0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }
double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto total = count_ + other.count_;
  m2_ += other.m2_ +
         delta * delta * double(count_) * double(other.count_) / double(total);
  mean_ += delta * double(other.count_) / double(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

void SampleSet::ensure_sorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) {
  SSBFT_EXPECTS(!samples_.empty());
  SSBFT_EXPECTS(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  const double pos = q * double(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - double(lo);
  return samples_[lo] * (1 - frac) + samples_[hi] * frac;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double x : samples_) sum += x;
  return sum / double(samples_.size());
}

double SampleSet::min() {
  SSBFT_EXPECTS(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() {
  SSBFT_EXPECTS(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

std::string summarize_ns(SampleSet& s) {
  if (s.empty()) return "n=0";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.3fms p50=%.3fms p90=%.3fms p99=%.3fms max=%.3fms",
                s.size(), s.mean() * 1e-6, s.quantile(0.5) * 1e-6,
                s.quantile(0.9) * 1e-6, s.quantile(0.99) * 1e-6,
                s.max() * 1e-6);
  return buf;
}

}  // namespace ssbft
