// Tiny CSV writer used by the bench harness to dump raw series next to the
// human-readable tables (so plots can be regenerated offline).
#pragma once

#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

namespace ssbft {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws nothing; a
  /// failed open degrades to a no-op writer (benches still print tables).
  CsvWriter(const std::string& path, std::vector<std::string> columns);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  [[nodiscard]] bool ok() const { return file_ != nullptr; }

  void row(std::initializer_list<double> values);
  void row(const std::vector<std::string>& values);

 private:
  std::FILE* file_ = nullptr;
  std::size_t columns_ = 0;
};

}  // namespace ssbft
