// Online statistics and simple fixed-resolution histograms, used by the
// harness and the benches to summarize measured protocol timings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace ssbft {

/// Welford-style running summary: count / mean / variance / min / max.
class RunningStats {
 public:
  void add(double x);
  void add(Duration d) { add(double(d.ns())); }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  void merge(const RunningStats& other);

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Stores every sample; supports exact quantiles. Fine at simulation scale.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void add(Duration d) { add(double(d.ns())); }

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double quantile(double q);      // q in [0,1]
  [[nodiscard]] double median() { return quantile(0.5); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min();
  [[nodiscard]] double max();

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted();

  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Render a one-line summary like "n=100 mean=1.23ms p50=... p99=... max=...",
/// interpreting samples as nanoseconds.
std::string summarize_ns(SampleSet& s);

}  // namespace ssbft
