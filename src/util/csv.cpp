#include "util/csv.hpp"

#include "util/assert.hpp"

namespace ssbft {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : file_(std::fopen(path.c_str(), "w")), columns_(columns.size()) {
  if (!file_) return;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    std::fprintf(file_, "%s%s", columns[i].c_str(),
                 i + 1 == columns.size() ? "\n" : ",");
  }
}

CsvWriter::~CsvWriter() {
  if (file_) std::fclose(file_);
}

void CsvWriter::row(std::initializer_list<double> values) {
  if (!file_) return;
  SSBFT_EXPECTS(values.size() == columns_);
  std::size_t i = 0;
  for (double v : values) {
    std::fprintf(file_, "%.9g%s", v, ++i == values.size() ? "\n" : ",");
  }
}

void CsvWriter::row(const std::vector<std::string>& values) {
  if (!file_) return;
  SSBFT_EXPECTS(values.size() == columns_);
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::fprintf(file_, "%s%s", values[i].c_str(),
                 i + 1 == values.size() ? "\n" : ",");
  }
}

}  // namespace ssbft
