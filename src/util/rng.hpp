// Deterministic, splittable pseudo-random generator.
//
// Every simulation run is reproducible from a single 64-bit seed. We use
// xoshiro256** seeded via splitmix64 — fast, well-tested statistically, and
// trivially re-implementable (no dependence on libstdc++'s unspecified
// std::mt19937 distribution behaviour across platforms).
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace ssbft {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform over all 64-bit values.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// true with probability p.
  bool next_bool(double p);

  /// Exponential with the given mean, truncated to [0, cap].
  double next_exp_truncated(double mean, double cap);

  /// Derive an independent child stream (for per-node / per-link RNGs).
  Rng split();

  /// Derive the canonical `(seed, domain, index)` stream — a pure function
  /// of its arguments, independent of any generator state or draw order.
  /// The simulation engines key every per-entity stream (node behavior RNG,
  /// clock init, per-sender link delays) this way so that a sharded run
  /// samples exactly what the serial run samples, no matter which worker
  /// executes which node. test_shard pins the first draws of these streams.
  [[nodiscard]] static Rng stream(std::uint64_t seed, std::uint64_t domain,
                                  std::uint64_t index);

 private:
  std::uint64_t s_[4];
};

/// Stream domains for Rng::stream. One namespace per per-entity stream the
/// engines derive; adding a domain never perturbs existing streams.
enum class RngDomain : std::uint64_t {
  kNodeBehavior = 1,  // NodeContext::rng() handed to the protocol/adversary
  kNodeClock = 2,     // drift rate + initial offset
  kLinkDelay = 3,     // per-SENDER link+processing delay sampling
};

[[nodiscard]] inline Rng rng_stream(std::uint64_t seed, RngDomain domain,
                                    std::uint64_t index) {
  return Rng::stream(seed, static_cast<std::uint64_t>(domain), index);
}

// THE canonical per-node streams. Every component that needs one — the
// serial World, the serial Network, and the sharded engine — must go
// through these two helpers (plus derive_node_clock in sim/world.hpp for
// the clock draws), so the engines cannot drift apart and break the
// sharded-vs-serial bit-parity guarantee. test_shard pins the first draws.

[[nodiscard]] inline Rng derive_node_rng(std::uint64_t seed,
                                         std::uint64_t node) {
  return rng_stream(seed, RngDomain::kNodeBehavior, node);
}

[[nodiscard]] inline Rng derive_link_rng(std::uint64_t seed,
                                         std::uint64_t node) {
  return rng_stream(seed, RngDomain::kLinkDelay, node);
}

}  // namespace ssbft
