// Deterministic, splittable pseudo-random generator.
//
// Every simulation run is reproducible from a single 64-bit seed. We use
// xoshiro256** seeded via splitmix64 — fast, well-tested statistically, and
// trivially re-implementable (no dependence on libstdc++'s unspecified
// std::mt19937 distribution behaviour across platforms).
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace ssbft {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform over all 64-bit values.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// true with probability p.
  bool next_bool(double p);

  /// Exponential with the given mean, truncated to [0, cap].
  double next_exp_truncated(double mean, double cap);

  /// Derive an independent child stream (for per-node / per-link RNGs).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace ssbft
