// Contract-checking macros, in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6, I.8). Violations abort with a diagnostic: in a
// simulator for a fault-tolerance protocol, continuing past a broken
// invariant would silently invalidate every measurement downstream.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ssbft::detail {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "ssbft: %s failed: %s (%s:%d)\n", kind, expr, file, line);
  std::abort();
}

}  // namespace ssbft::detail

#define SSBFT_EXPECTS(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::ssbft::detail::contract_violation("precondition", #cond, __FILE__,   \
                                          __LINE__);                         \
  } while (0)

#define SSBFT_ENSURES(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::ssbft::detail::contract_violation("postcondition", #cond, __FILE__,  \
                                          __LINE__);                         \
  } while (0)

#define SSBFT_ASSERT(cond)                                                   \
  do {                                                                       \
    if (!(cond))                                                             \
      ::ssbft::detail::contract_violation("invariant", #cond, __FILE__,      \
                                          __LINE__);                         \
  } while (0)
