// Strong time types for the simulator and protocol.
//
// The paper distinguishes real-time `t` from a node's local-time reading `τ`
// (§2). We mirror that distinction in the type system: RealTime and
// LocalTime are distinct nanosecond-resolution types and cannot be mixed
// arithmetically; Duration is the common difference type. Only the clock
// model (sim/clock.hpp) converts between the two.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace ssbft {

/// Signed time difference in nanoseconds. Used for both real and local
/// intervals; the paper's `d`, `Φ`, `∆agr`, ... are all Durations.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double seconds() const { return double(ns_) * 1e-9; }
  [[nodiscard]] constexpr double millis() const { return double(ns_) * 1e-6; }
  [[nodiscard]] constexpr double micros() const { return double(ns_) * 1e-3; }

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  constexpr double operator/(Duration o) const { return double(ns_) / double(o.ns_); }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr auto operator<=>(const Duration&) const = default;

  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

 private:
  std::int64_t ns_ = 0;
};

constexpr Duration operator*(std::int64_t k, Duration d) { return d * k; }

constexpr Duration nanoseconds(std::int64_t v) { return Duration{v}; }
constexpr Duration microseconds(std::int64_t v) { return Duration{v * 1'000}; }
constexpr Duration milliseconds(std::int64_t v) { return Duration{v * 1'000'000}; }
constexpr Duration seconds(std::int64_t v) { return Duration{v * 1'000'000'000}; }

namespace detail {

// CRTP base for the two time-point flavours. `Tag` makes them distinct types.
template <class Tag>
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double seconds() const { return double(ns_) * 1e-9; }
  [[nodiscard]] constexpr double millis() const { return double(ns_) * 1e-6; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.ns()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.ns()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration{ns_ - o.ns_}; }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.ns(); return *this; }
  constexpr auto operator<=>(const TimePoint&) const = default;

  [[nodiscard]] static constexpr TimePoint zero() { return TimePoint{0}; }
  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }
  [[nodiscard]] static constexpr TimePoint min() {
    return TimePoint{std::numeric_limits<std::int64_t>::min()};
  }

 private:
  std::int64_t ns_ = 0;
};

}  // namespace detail

struct RealTag {};
struct LocalTag {};

/// Global simulation time `t`. Only the simulator sees it directly.
using RealTime = detail::TimePoint<RealTag>;
/// A node's own timer reading `τ`. All protocol logic runs on LocalTime.
using LocalTime = detail::TimePoint<LocalTag>;

[[nodiscard]] inline Duration abs(Duration d) {
  return d < Duration::zero() ? -d : d;
}

[[nodiscard]] inline std::string to_string(Duration d) {
  return std::to_string(d.ns()) + "ns";
}

}  // namespace ssbft
