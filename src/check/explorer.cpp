#include "check/explorer.hpp"

#include <algorithm>
#include <string>

#include "harness/metrics.hpp"
#include "harness/runner.hpp"
#include "util/rng.hpp"

namespace ssbft {
namespace {

/// Per-trial schedule controller: digits of `trial` in base |palette| drive
/// the first `depth` messages (exhaustive prefix tree); a trial-seeded RNG
/// drives the tail.
class ScheduleChooser {
 public:
  ScheduleChooser(const std::vector<Duration>& palette, std::uint64_t trial,
                  std::uint32_t depth)
      : palette_(palette), depth_(depth), tail_rng_(0x5EED0000 + trial) {
    std::uint64_t digits = trial;
    for (std::uint32_t i = 0; i < depth_; ++i) {
      prefix_.push_back(std::size_t(digits % palette_.size()));
      digits /= palette_.size();
    }
  }

  [[nodiscard]] Duration choose(std::uint64_t seq) {
    if (seq < depth_) return palette_[prefix_[std::size_t(seq)]];
    return palette_[tail_rng_.next_below(palette_.size())];
  }

 private:
  const std::vector<Duration>& palette_;
  std::uint32_t depth_;
  Rng tail_rng_;
  std::vector<std::size_t> prefix_;
};

void check_trial(const Cluster& cluster, std::uint64_t trial,
                 bool expect_validity, RealTime check_after,
                 ExplorerReport& report) {
  const Params& params = cluster.params();
  const auto executions =
      cluster_executions(cluster.decisions(), params);
  for (const auto& exec : executions) {
    if (exec.first_return() < check_after) continue;  // pre-stability
    ++report.executions_checked;
    report.decisions_seen += exec.decided_count();
    if (!exec.agreement_holds()) {
      report.violations.push_back(
          {trial, "Agreement violated for General " +
                      std::to_string(exec.general.node)});
    }
    if (exec.decided_count() > 0 && exec.decision_skew() > 3 * params.d()) {
      report.violations.push_back(
          {trial, "Timeliness-1a: decision skew " +
                      std::to_string(exec.decision_skew().ns()) + "ns > 3d"});
    }
    if (exec.tau_g_skew() > 6 * params.d()) {
      report.violations.push_back(
          {trial, "Timeliness-1b: anchor skew " +
                      std::to_string(exec.tau_g_skew().ns()) + "ns > 6d"});
    }
  }
  if (expect_validity) {
    const auto metrics =
        evaluate_run(cluster.decisions(), cluster.proposals(),
                     cluster.correct_count(), params);
    if (metrics.validity_violations != 0) {
      report.violations.push_back({trial, "Validity violated"});
    }
    if (metrics.agreement_violations != 0) {
      report.violations.push_back({trial, "Agreement (run-level) violated"});
    }
  }
}

}  // namespace

ExplorerReport explore(const ExplorerConfig& config) {
  ExplorerReport report;

  std::vector<Duration> palette = config.palette;
  if (palette.empty()) {
    const Params params = config.base.make_params();
    palette = {microseconds(1), params.d() / 2,
               config.base.delta + config.base.pi};
  }

  report.prefix_combinations = 1;
  for (std::uint32_t i = 0; i < config.systematic_depth; ++i) {
    report.prefix_combinations *= palette.size();
  }

  for (std::uint64_t trial = 0; trial < config.trials; ++trial) {
    Scenario sc = config.base;
    sc.seed = 0xC0FFEE ^ trial;  // drives drift phases and the adversary
    sc.shards = 0;  // delay oracles are a serial-engine contract
    Cluster cluster(sc);
    ScheduleChooser chooser(palette, trial, config.systematic_depth);
    cluster.world().network().set_delay_oracle(
        [&chooser](NodeId, NodeId, const WireMessage&, std::uint64_t seq) {
          return std::optional<Duration>{chooser.choose(seq)};
        });
    cluster.run();
    ++report.trials;
    check_trial(cluster, trial, config.expect_validity, config.check_after,
                report);
  }
  return report;
}

}  // namespace ssbft
