// Bounded adversarial-schedule explorer.
//
// Seeded random runs (the stress tests) sample delay schedules from a
// benign distribution; the sharpest counterexamples to agreement protocols
// live in *adversarially chosen* schedules — a message racing a freshness
// window, one node's quorum completing a phase early, stragglers pinned at
// δ. This module hands the network's per-message delays to a controller and
// explores the schedule space two ways:
//
//   * systematically — the first `systematic_depth` messages take every
//     combination from a small palette of extreme delays (a |palette|^depth
//     tree, enumerated exhaustively across trials);
//   * randomly — every later message draws a palette delay from a
//     trial-seeded RNG, so deep schedules still vary wildly.
//
// Every trial checks the paper's safety properties on the observed
// decisions: Agreement (unique non-⊥ value per execution), Timeliness-1a/1b
// skew bounds, and workload validity. The palette is clamped inside the
// bounded-delay envelope, so any violation found is a genuine
// counterexample to the protocol under the paper's own model — none is
// expected; the explorer exists to back that expectation with coverage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "util/time.hpp"

namespace ssbft {

struct ExplorerConfig {
  /// Scenario template: topology, faults, workload. The explorer overrides
  /// the seed per trial.
  Scenario base;
  /// Trials ≥ palette^systematic_depth gives full coverage of the prefix
  /// tree; extra trials vary the random tail.
  std::uint32_t trials = 256;
  /// Messages whose delay is enumerated exhaustively (tree depth).
  std::uint32_t systematic_depth = 5;
  /// Delay palette; empty ⇒ {≈0, d/2, δ+π} (fast / middling / worst-case).
  std::vector<Duration> palette;
  /// Validity checking: expect exactly the scenario's correct-General
  /// proposals to decide (set false under Byzantine-General adversaries).
  bool expect_validity = true;
  /// Safety is judged only for executions whose first return is at/after
  /// this real time. The paper's properties hold "once the system is
  /// stable": for scenarios starting from a transient scramble, set this to
  /// ∆stb — anything decided earlier is pre-coherence behaviour the model
  /// makes no claims about.
  RealTime check_after{};
};

struct ScheduleViolation {
  std::uint64_t trial = 0;
  std::string what;
};

struct ExplorerReport {
  std::uint32_t trials = 0;
  std::uint64_t prefix_combinations = 0;  // size of the systematic tree
  std::uint32_t executions_checked = 0;
  std::uint32_t decisions_seen = 0;
  std::vector<ScheduleViolation> violations;

  [[nodiscard]] bool clean() const { return violations.empty(); }
};

/// Run the exploration. Deterministic: a given config always explores the
/// same schedules and returns the same report.
[[nodiscard]] ExplorerReport explore(const ExplorerConfig& config);

}  // namespace ssbft
