// Bounded value → body-checksum cache for the log stacks.
//
// A decision record (core/node.hpp) carries only the agreed VALUE; the
// command's application body rides the proposer's Initiator broadcast as a
// shared-pool payload (sim/payload.hpp) and is not echoed through the
// agreement rounds. Every correct node therefore remembers the checksum of
// the body it saw on each recent Initiator, keyed by agreement value, and
// stamps it onto the committed entry when that value's decision arrives.
#pragma once

#include <cstdint>
#include <map>

#include "sim/wire.hpp"
#include "util/types.hpp"

namespace ssbft {

/// Deterministic and bounded: at most kCapacity entries, evicting the
/// smallest value first; transient-fault scrambles clear it (a stale
/// checksum is corruptible state like any other, and the digest must not
/// depend on pre-scramble observations). A Byzantine Initiator can poison
/// the entry for a value it broadcast — deterministically, and only within
/// the sending power the authenticated-Byzantine model already grants it;
/// under AuthKind::kHmac third parties cannot (forged bodies are discarded
/// before delivery).
class PayloadCrcCache {
 public:
  static constexpr std::size_t kCapacity = 64;

  /// Record `msg`'s body checksum if it is an Initiator carrying one.
  void observe(const WireMessage& msg) {
    if (msg.kind != MsgKind::kInitiator || msg.payload.empty()) return;
    crc_[msg.value] = msg.payload.checksum();
    if (crc_.size() > kCapacity) crc_.erase(crc_.begin());
  }

  /// Checksum cached for `value`, or 0 when no body was observed.
  [[nodiscard]] std::uint64_t lookup(Value value) const {
    const auto it = crc_.find(value);
    return it == crc_.end() ? 0 : it->second;
  }

  void clear() { crc_.clear(); }

 private:
  std::map<Value, std::uint64_t> crc_;
};

}  // namespace ssbft
