// Totally-ordered replicated log (state-machine replication) on top of
// ss-Byz-Agree — the canonical downstream use of a Byzantine agreement
// primitive, and the repository's end-to-end "would a user adopt this?"
// artifact.
//
// Design: slots are numbered; the *proposer* for slot s is s mod n
// (rotating leadership). The proposer initiates ss-Byz-Agree on an encoded
// (slot, command) value; every correct node commits the command at slot s
// when it decides (G, ⟨s,cmd⟩). The log is a map keyed by slot: only
// *decided* entries enter it, so Agreement makes the maps identical at all
// correct nodes — a local watchdog merely advances the cursor past
// faulty/idle proposers (skipped slots stay empty everywhere; a late
// decision delivered by the relay property still fills its slot).
//
// Total order for the application is slot order. Commands are 32-bit
// payloads (the agreement value carries slot ‖ command; a production system
// would agree on digests of externally stored data).
//
// Self-stabilization is inherited: after a transient fault the underlying
// agreement converges, slot cursors re-synchronize through decisions, and
// the committed suffix is identical again at every correct node.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "app/log_types.hpp"
#include "app/payload_cache.hpp"
#include "core/node.hpp"
#include "core/params.hpp"
#include "sim/node.hpp"

namespace ssbft {

class ReplicatedLogNode : public NodeBehavior {
 public:
  using CommitSink = std::function<void(const CommittedEntry&)>;
  using Log = std::map<std::uint64_t, CommittedEntry>;

  ReplicatedLogNode(Params params, LogConfig config, CommitSink sink);
  ~ReplicatedLogNode() override;

  // --- NodeBehavior --------------------------------------------------------
  void on_start(NodeContext& ctx) override;
  void on_message(NodeContext& ctx, const WireMessage& msg) override;
  void on_timer(NodeContext& ctx, std::uint64_t cookie) override;
  void scramble(NodeContext& ctx, Rng& rng) override;
  void rebind(NodeContext& ctx) override {
    ctx_ = &ctx;
    agree_->rebind(ctx);
  }

  // --- application API -----------------------------------------------------
  /// Queue a command; it is proposed when this node's slot comes up. The
  /// optional payload is the command's application body: it rides the
  /// proposal's Initiator broadcast through the shared payload pool, and
  /// its checksum lands on every correct node's CommittedEntry.
  void submit(std::uint32_t command, Payload payload = {});

  /// Committed entries by slot. Identical (up to local commit times) at all
  /// correct nodes for every settled slot.
  [[nodiscard]] const Log& log() const { return log_; }
  [[nodiscard]] std::uint64_t cursor() const { return cursor_; }
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] Duration slot_period() const { return slot_period_; }

  /// The embedded agreement node (harness probes, white-box tests).
  [[nodiscard]] SsByzNode& agreement() { return *agree_; }

  /// Encoding of (slot, command) into an agreement value — exposed for
  /// tests. Slot in bits 32..62 (the top bit stays clear of kBottom).
  [[nodiscard]] static Value encode(std::uint64_t slot, std::uint32_t command);
  static void decode(Value value, std::uint64_t& slot, std::uint32_t& command);

 private:
  static constexpr std::uint64_t kLogTimerBit = 1ULL << 62;
  enum class LogTimer : std::uint8_t { kSlotDue = 1, kWatchdog = 2 };

  void on_decision(const Decision& decision);
  void schedule_own_slot();
  void arm_watchdog();
  void maybe_propose();
  [[nodiscard]] NodeId proposer_for(std::uint64_t slot) const;

  LogConfig config_;
  Duration slot_period_{};
  Duration watchdog_timeout_{};
  CommitSink sink_;
  std::unique_ptr<SsByzNode> agree_;
  NodeContext* ctx_ = nullptr;

  struct PendingCommand {
    std::uint32_t command = 0;
    Payload payload;  // application body (pool reference; may be empty)
  };

  Log log_;
  std::vector<PendingCommand> pending_;
  PayloadCrcCache payload_crcs_;  // value → body checksum, from Initiators
  std::uint64_t cursor_ = 0;  // next slot this node expects to settle
  std::optional<LocalTime> last_activity_;
  TimerHandle watchdog_timer_{};  // re-arming cancels the predecessor
};

}  // namespace ssbft
