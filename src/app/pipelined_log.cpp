#include "app/pipelined_log.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "app/replicated_log.hpp"  // shared (slot, command) value encoding
#include "util/assert.hpp"

namespace ssbft {

PipelinedLogNode::PipelinedLogNode(Params params, PipelineConfig config,
                                   DeliverSink sink)
    : config_(config), sink_(std::move(sink)) {
  const Duration min_period = params.delta_0() + params.delta_agr();
  slot_period_ = config_.slot_period == Duration::zero()
                     ? min_period + 5 * params.d()
                     : config_.slot_period;
  SSBFT_EXPECTS(slot_period_ >= min_period);
  const Duration slack = config_.timeout_slack == Duration::zero()
                             ? 8 * params.d()
                             : config_.timeout_slack;
  watchdog_timeout_ = slot_period_ + params.delta_agr() + slack;
  depth_ = std::max(1u, config_.depth);
  agree_ = std::make_unique<SsByzNode>(
      std::move(params),
      [this](const Decision& decision) { on_decision(decision); });
}

PipelinedLogNode::~PipelinedLogNode() = default;

NodeId PipelinedLogNode::proposer_for(std::uint64_t slot) const {
  return NodeId(slot % (ctx_ ? ctx_->n() : 1));
}

std::uint32_t PipelinedLogNode::index_for(std::uint64_t slot) const {
  // Consecutive slots owned by the same proposer (s, s+n, s+2n, ...) cycle
  // through distinct instance indices, so a window never puts two in-flight
  // slots of one proposer on the same (G, index) instance as long as
  // depth ≤ n · max_indices.
  const std::uint32_t n = ctx_ ? ctx_->n() : 1;
  return std::uint32_t((slot / n) % agree_->params().max_indices());
}

void PipelinedLogNode::on_start(NodeContext& ctx) {
  ctx_ = &ctx;
  // The index space bounds how deep one proposer can pipeline.
  depth_ = std::min(depth_, ctx.n() * agree_->params().max_indices());
  agree_->on_start(ctx);
  arm_watchdog();
  set_pipe_timer(slot_period_, PipeTimer::kProposeDue, 0);
}

void PipelinedLogNode::on_message(NodeContext& ctx, const WireMessage& msg) {
  payload_crcs_.observe(msg);  // remember Initiator bodies for on_decision
  agree_->on_message(ctx, msg);
}

TimerHandle PipelinedLogNode::set_pipe_timer(Duration after, PipeTimer kind,
                                             std::uint32_t payload) {
  SSBFT_ASSERT(ctx_ != nullptr);
  return ctx_->set_timer_after(
      after, kPipeTimerBit | (std::uint64_t(kind) << 32) | payload);
}

void PipelinedLogNode::on_timer(NodeContext& ctx, std::uint64_t cookie) {
  if ((cookie & kPipeTimerBit) == 0) {
    agree_->on_timer(ctx, cookie);
    return;
  }
  const auto kind = PipeTimer((cookie >> 32) & 0xFF);
  switch (kind) {
    case PipeTimer::kProposeDue:
      propose_owned_slots();
      set_pipe_timer(slot_period_, PipeTimer::kProposeDue, 0);
      break;
    case PipeTimer::kHoleGrace:
      sweep_hole_grace();
      break;
    case PipeTimer::kWatchdog:
      // Only the live watchdog ever fires (arming cancels its predecessor).
      // The window base made no progress for a whole timeout: its proposer
      // is faulty or idle. Skip it; later slots may already be settled, so
      // the base may jump several slots forward.
      settle(low_, std::nullopt, proposer_for(low_));
      arm_watchdog();
      propose_owned_slots();
      break;
  }
}

void PipelinedLogNode::submit(std::uint32_t command, Payload payload) {
  pending_.push_back(PendingCommand{command, std::move(payload)});
  propose_owned_slots();
}

void PipelinedLogNode::propose_owned_slots() {
  if (ctx_ == nullptr) return;
  // Assign queued commands to owned, unassigned slots in the window, then
  // (re)propose every owned assigned slot that is still unsettled. A
  // command moves from pending_ into assigned_ when it gets a slot, and
  // back to the queue head if that slot is skipped under it.
  for (std::uint64_t slot = low_; slot < low_ + depth_; ++slot) {
    if (proposer_for(slot) != ctx_->id()) continue;
    if (settled_.count(slot) != 0) continue;
    if (assigned_.count(slot) == 0) {
      if (pending_.empty()) continue;
      assigned_[slot] = std::move(pending_.front());
      pending_.pop_front();
    }
    if (proposed_.count(slot) != 0) continue;
    const PendingCommand& cmd = assigned_[slot];
    const Value value = ReplicatedLogNode::encode(slot, cmd.command);
    const ProposeStatus status =
        agree_->propose(value, index_for(slot), cmd.payload);
    if (status == ProposeStatus::kSent) {
      proposed_.insert(slot);
      ctx_->log().logf(LogLevel::kDebug, ctx_->id(),
                       "pipeline propose slot=%llu idx=%u cmd=%u |b|=%u",
                       static_cast<unsigned long long>(slot),
                       index_for(slot), cmd.command, cmd.payload.size());
    } else {
      // Pacing refusal (healing after a scramble, or the previous wave on
      // this index is younger than ∆0): retry shortly — the watchdog caps
      // how long the slot can stall regardless.
      set_pipe_timer(agree_->params().delta_0() / 2, PipeTimer::kProposeDue,
                     0);
    }
  }
}

void PipelinedLogNode::on_decision(const Decision& decision) {
  if (!decision.decided()) return;
  std::uint64_t slot;
  std::uint32_t command;
  ReplicatedLogNode::decode(decision.value, slot, command);
  // Rotation + index discipline: a slot may only be filled by its
  // designated proposer through its designated instance index.
  if (proposer_for(slot) != decision.general.node) return;
  if (index_for(slot) != decision.general.index) return;
  settle(slot, command, decision.general.node,
         payload_crcs_.lookup(decision.value));
}

void PipelinedLogNode::settle(std::uint64_t slot,
                              std::optional<std::uint32_t> command,
                              NodeId proposer, std::uint64_t payload_crc) {
  if (const auto it = settled_.find(slot); it != settled_.end()) {
    // Duplicate/late copy — except a genuine commit arriving for a slot we
    // grace-holed: window bases can drift apart for arbitrarily long after
    // a transient fault (a straggler proposes only when it next has work),
    // so a local hole may race a remote proposal. The commit wins: it is
    // unique by Agreement, so upgrading converges the settled map at every
    // correct node no matter how the race interleaved. If the hole was
    // already handed to the sink, that delivery-stream divergence is
    // pre-coherence damage (see DESIGN.md / settled()).
    if (command.has_value() && it->second.skipped) {
      it->second.command = *command;
      it->second.proposer = proposer;
      it->second.payload_crc = payload_crc;
      it->second.skipped = false;
      // Not re-delivered: the sink's stream stays strictly in slot order.
      // If the hole already went out, the correction lives only in
      // settled() — in-order consumers recover via state transfer.
    }
    return;
  }

  // Catch-up: a decision beyond our window means the cluster moved past us
  // (a scrambled cursor left us behind). Jump the window base forward so
  // our proposals rejoin the cluster; the slots we jumped over become hole
  // candidates after the grace period — never immediately, because their
  // agreements may still be in flight (including our own).
  if (command.has_value() && slot >= low_ + depth_) {
    const std::uint64_t target = slot + 1 - depth_;
    begin_catchup(low_, target);
    low_ = target;
  }

  PipelinedEntry entry;
  entry.slot = slot;
  entry.command = command.value_or(0);
  entry.proposer = proposer;
  entry.payload_crc = payload_crc;
  entry.skipped = !command.has_value();
  settled_.emplace(slot, entry);

  // A committed own slot consumes its command; a skipped own slot releases
  // the command (body included) back to the queue head for the next owned
  // slot.
  const auto assigned = assigned_.find(slot);
  if (assigned != assigned_.end()) {
    if (!command.has_value()) pending_.push_front(std::move(assigned->second));
    assigned_.erase(assigned);
  }
  proposed_.erase(slot);
  hole_due_.erase(slot);

  // Advance the window base past everything settled.
  const std::uint64_t old_low = low_;
  while (settled_.count(low_) != 0) ++low_;
  if (low_ != old_low) arm_watchdog();
  flush_deliveries();
  propose_owned_slots();
}

Duration PipelinedLogNode::hole_grace() const {
  // Termination bounds any in-flight agreement by ∆agr (+7d if a node never
  // explicitly invoked it); 8d also covers decision relay and τG skew.
  return agree_->params().delta_agr() + 8 * agree_->params().d();
}

void PipelinedLogNode::begin_catchup(std::uint64_t from, std::uint64_t to) {
  if (ctx_ == nullptr || from >= to) return;
  const LocalTime due = ctx_->local_now() + hole_grace();
  bool armed = false;
  for (std::uint64_t u = from; u < to; ++u) {
    if (settled_.count(u) != 0 || hole_due_.count(u) != 0) continue;
    hole_due_.emplace(u, due);
    armed = true;
  }
  if (armed) {
    set_pipe_timer(hole_grace() + agree_->params().d(), PipeTimer::kHoleGrace,
                   0);
  }
}

void PipelinedLogNode::sweep_hole_grace() {
  if (ctx_ == nullptr) return;
  const LocalTime now = ctx_->local_now();
  // Collect first: settle() mutates hole_due_.
  std::vector<std::uint64_t> due;
  for (const auto& [slot, deadline] : hole_due_) {
    if (deadline <= now && settled_.count(slot) == 0) due.push_back(slot);
  }
  for (const std::uint64_t slot : due) {
    settle(slot, std::nullopt, proposer_for(slot));
  }
  // Drop satisfied/expired records; future deadlines stay armed.
  for (auto it = hole_due_.begin(); it != hole_due_.end();) {
    if (it->second <= now || settled_.count(it->first) != 0) {
      it = hole_due_.erase(it);
    } else {
      ++it;
    }
  }
}

void PipelinedLogNode::flush_deliveries() {
  while (true) {
    const auto it = settled_.find(deliver_next_);
    if (it != settled_.end()) {
      if (sink_) sink_(it->second);
      ++deliver_next_;
      continue;
    }
    if (deliver_next_ < low_ && hole_due_.count(deliver_next_) == 0) {
      // In stable operation low_ only moves over contiguously settled
      // slots, so a gap here means a scrambled cursor (or a catch-up jump
      // whose grace record was itself scrambled away). Nothing below low_
      // will be proposed again: queue the slot for hole release after the
      // grace period, in case its agreement is still in flight.
      begin_catchup(deliver_next_, low_);
      break;
    }
    break;
  }
}

void PipelinedLogNode::arm_watchdog() {
  if (ctx_ == nullptr) return;
  ctx_->cancel_timer(watchdog_timer_);
  watchdog_timer_ = set_pipe_timer(watchdog_timeout_, PipeTimer::kWatchdog, 0);
}

void PipelinedLogNode::scramble(NodeContext& ctx, Rng& rng) {
  agree_->scramble(ctx, rng);
  payload_crcs_.clear();
  low_ = rng.next_below(64);
  deliver_next_ = std::min(low_, std::uint64_t(rng.next_below(64)));
  if (rng.next_bool(0.4)) {
    PipelinedEntry junk;
    junk.slot = low_ + rng.next_below(depth_);
    junk.command = std::uint32_t(rng.next_u64());
    junk.proposer = NodeId(rng.next_below(ctx.n()));
    settled_.emplace(junk.slot, junk);
  }
  assigned_.clear();
  proposed_.clear();
  hole_due_.clear();
  arm_watchdog();
}

}  // namespace ssbft
