// Log-stack value types: configuration and the published entry records for
// the sequential and pipelined replicated logs. Kept free of the protocol
// implementation so declarative layers (Scenario, Probe) can name them
// without compiling the node machinery.
#pragma once

#include <cstdint>

#include "util/time.hpp"
#include "util/types.hpp"

namespace ssbft {

struct LogConfig {
  /// Target per-slot period; must be ≥ ∆0 + ∆agr (IG1 pacing). Zero ⇒ that
  /// minimum plus 5d of slack.
  Duration slot_period = Duration::zero();
  /// Watchdog slack past slot_period + ∆agr before skipping a slot.
  Duration timeout_slack = Duration::zero();  // zero ⇒ 8d
};

struct CommittedEntry {
  std::uint64_t slot = 0;
  std::uint32_t command = 0;
  NodeId proposer = kNoNode;
  /// FNV checksum of the command's application body as observed on the
  /// proposer's Initiator broadcast (0 ⇒ bare command). Folded into run
  /// digests; excluded from log-identity comparison like `at` (the digest
  /// pins cross-engine parity, operator== pins protocol-level identity).
  std::uint64_t payload_crc = 0;
  LocalTime at{};

  friend bool operator==(const CommittedEntry& a, const CommittedEntry& b) {
    // Log-identity comparisons ignore the local commit time.
    return a.slot == b.slot && a.command == b.command &&
           a.proposer == b.proposer;
  }
};

struct PipelineConfig {
  /// Window size: slots concurrently in flight. Clamped to what the
  /// instance-index space supports (params.max_indices() · n).
  std::uint32_t depth = 4;
  /// Pacing between waves of proposals by the same node on the same
  /// instance index; must be ≥ ∆0 + ∆agr. Zero ⇒ that minimum plus 5d.
  Duration slot_period = Duration::zero();
  /// Watchdog slack past slot_period + ∆agr before skipping the lowest
  /// unsettled slot. Zero ⇒ 8d.
  Duration timeout_slack = Duration::zero();
};

struct PipelinedEntry {
  std::uint64_t slot = 0;
  std::uint32_t command = 0;
  NodeId proposer = kNoNode;
  /// Body checksum, as CommittedEntry::payload_crc (0 for skips).
  std::uint64_t payload_crc = 0;
  bool skipped = false;  // true ⇒ no commit; hole released in order

  friend bool operator==(const PipelinedEntry& a, const PipelinedEntry& b) {
    return a.slot == b.slot && a.command == b.command &&
           a.proposer == b.proposer && a.skipped == b.skipped;
  }
};

}  // namespace ssbft
