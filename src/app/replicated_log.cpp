#include "app/replicated_log.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace ssbft {

Value ReplicatedLogNode::encode(std::uint64_t slot, std::uint32_t command) {
  // Slot masked to 31 bits keeps the value clear of kBottom (all ones).
  return ((slot & 0x7FFFFFFF) << 32) | command;
}

void ReplicatedLogNode::decode(Value value, std::uint64_t& slot,
                               std::uint32_t& command) {
  slot = (value >> 32) & 0x7FFFFFFF;
  command = std::uint32_t(value & 0xFFFFFFFF);
}

ReplicatedLogNode::ReplicatedLogNode(Params params, LogConfig config,
                                     CommitSink sink)
    : config_(config), sink_(std::move(sink)) {
  const Duration min_period = params.delta_0() + params.delta_agr();
  slot_period_ = config_.slot_period == Duration::zero()
                     ? min_period + 5 * params.d()
                     : config_.slot_period;
  SSBFT_EXPECTS(slot_period_ >= min_period);
  const Duration slack = config_.timeout_slack == Duration::zero()
                             ? 8 * params.d()
                             : config_.timeout_slack;
  watchdog_timeout_ = slot_period_ + params.delta_agr() + slack;
  agree_ = std::make_unique<SsByzNode>(
      std::move(params),
      [this](const Decision& decision) { on_decision(decision); });
}

ReplicatedLogNode::~ReplicatedLogNode() = default;

NodeId ReplicatedLogNode::proposer_for(std::uint64_t slot) const {
  return NodeId(slot % (ctx_ ? ctx_->n() : 1));
}

void ReplicatedLogNode::on_start(NodeContext& ctx) {
  ctx_ = &ctx;
  agree_->on_start(ctx);
  arm_watchdog();
  schedule_own_slot();
}

void ReplicatedLogNode::on_message(NodeContext& ctx, const WireMessage& msg) {
  payload_crcs_.observe(msg);  // remember Initiator bodies for on_decision
  agree_->on_message(ctx, msg);
}

void ReplicatedLogNode::on_timer(NodeContext& ctx, std::uint64_t cookie) {
  if ((cookie & kLogTimerBit) == 0) {
    agree_->on_timer(ctx, cookie);
    return;
  }
  const auto kind = LogTimer((cookie >> 32) & 0xFF);
  switch (kind) {
    case LogTimer::kSlotDue:
      maybe_propose();
      break;
    case LogTimer::kWatchdog:
      // Only the live watchdog ever fires (arming cancels its
      // predecessor). The slot's proposer is presumed faulty or idle:
      // advance the cursor
      // (the slot stays empty — only decisions create entries) and let the
      // next proposer go. A late decision can still fill the hole.
      ++cursor_;
      last_activity_ = ctx.local_now();
      arm_watchdog();
      schedule_own_slot();
      maybe_propose();
      break;
  }
}

void ReplicatedLogNode::submit(std::uint32_t command, Payload payload) {
  pending_.push_back(PendingCommand{command, std::move(payload)});
}

void ReplicatedLogNode::maybe_propose() {
  if (ctx_ == nullptr) return;
  if (proposer_for(cursor_) != ctx_->id()) return;
  if (pending_.empty()) return;  // nothing to say; watchdog will skip us
  if (log_.count(cursor_) != 0) return;  // already settled
  const Value value = encode(cursor_, pending_.front().command);
  const ProposeStatus status =
      agree_->propose(value, 0, pending_.front().payload);
  if (status == ProposeStatus::kSent) {
    ctx_->log().logf(LogLevel::kDebug, ctx_->id(),
                     "log propose slot=%llu cmd=%u |b|=%u",
                     static_cast<unsigned long long>(cursor_),
                     pending_.front().command, pending_.front().payload.size());
    return;
  }
  // Refused (General-pacing state still healing after a scramble). Retry
  // while the slot is still ours — pacing clears within bounded time, and
  // the watchdog caps how long we hold the slot regardless.
  ctx_->set_timer_after(agree_->params().delta_0() / 2,
                        kLogTimerBit |
                            (std::uint64_t(LogTimer::kSlotDue) << 32));
}

void ReplicatedLogNode::on_decision(const Decision& decision) {
  if (!decision.decided()) return;
  std::uint64_t slot;
  std::uint32_t command;
  decode(decision.value, slot, command);
  // Only the rotation's designated proposer may fill a slot; anything else
  // is a Byzantine node proposing outside its turn.
  if (proposer_for(slot) != decision.general.node) return;
  if (log_.count(slot) != 0) return;  // duplicate/late copy, already settled

  CommittedEntry entry;
  entry.slot = slot;
  entry.command = command;
  entry.proposer = decision.general.node;
  entry.payload_crc = payload_crcs_.lookup(decision.value);
  entry.at = ctx_ ? ctx_->local_now() : LocalTime{};
  log_.emplace(slot, entry);
  last_activity_ = entry.at;
  cursor_ = std::max(cursor_, slot + 1);

  // Consume our own command once it is committed.
  if (ctx_ && entry.proposer == ctx_->id() && !pending_.empty() &&
      pending_.front().command == command) {
    pending_.erase(pending_.begin());
  }
  arm_watchdog();
  schedule_own_slot();
  if (sink_) sink_(entry);
}

void ReplicatedLogNode::schedule_own_slot() {
  if (ctx_ == nullptr) return;
  if (proposer_for(cursor_) != ctx_->id()) return;
  const LocalTime base = last_activity_.value_or(ctx_->local_now());
  const std::uint64_t cookie =
      kLogTimerBit | (std::uint64_t(LogTimer::kSlotDue) << 32);
  ctx_->set_timer(base + slot_period_, cookie);
}

void ReplicatedLogNode::arm_watchdog() {
  if (ctx_ == nullptr) return;
  const std::uint64_t cookie =
      kLogTimerBit | (std::uint64_t(LogTimer::kWatchdog) << 32);
  watchdog_timer_ = ctx_->reschedule_timer(
      watchdog_timer_, ctx_->local_now() + watchdog_timeout_, cookie);
}

void ReplicatedLogNode::scramble(NodeContext& ctx, Rng& rng) {
  agree_->scramble(ctx, rng);
  // Application state is fair game for a transient fault too.
  payload_crcs_.clear();
  cursor_ = rng.next_below(64);
  if (rng.next_bool(0.3)) {
    CommittedEntry junk;
    junk.slot = rng.next_below(64);
    junk.command = std::uint32_t(rng.next_u64());
    junk.proposer = NodeId(rng.next_below(ctx.n()));
    junk.at = ctx.local_now();
    log_.emplace(junk.slot, junk);
  }
  if (rng.next_bool(0.5)) {
    last_activity_ = ctx.local_now() - Duration{rng.next_in(0, slot_period_.ns())};
  } else {
    last_activity_.reset();
  }
  arm_watchdog();
}

}  // namespace ssbft
