// Pipelined totally-ordered replicated log — the footnote-9 payoff.
//
// ReplicatedLogNode (replicated_log.hpp) settles one slot at a time: slot
// s+1 starts only after slot s commits or is skipped, so throughput is one
// command per slot_period. This variant keeps a window of `depth` slots in
// flight concurrently, using the concurrent-invocation indices of footnote
// 9: slot s is agreed through instance (proposer(s), (s / n) mod
// max_indices), so the same proposer can drive several agreements at once —
// each with its own message logs, freshness windows, and IG pacing.
//
// Ordering and safety are unchanged from the sequential log:
//   * only decisions create entries, and Agreement makes every settled slot
//     identical at all correct nodes;
//   * delivery is in slot order — entry s is delivered only after every
//     slot < s is settled (committed) or skipped;
//   * a skip is safe: the watchdog timeout exceeds the decision-relay bound
//     (3d) by orders of magnitude, so if ANY correct node committed slot s,
//     every correct node commits it long before any watchdog skips it.
//
// Self-stabilization is inherited per instance: a transient fault scrambles
// window cursors and in-flight instances; each (G, index) instance
// converges independently, and the watchdog re-anchors the window.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "app/log_types.hpp"
#include "app/payload_cache.hpp"
#include "core/node.hpp"
#include "core/params.hpp"
#include "sim/node.hpp"

namespace ssbft {

class PipelinedLogNode : public NodeBehavior {
 public:
  /// Called in slot order, exactly once per settled slot (including
  /// skipped holes, so applications can track progress).
  using DeliverSink = std::function<void(const PipelinedEntry&)>;

  PipelinedLogNode(Params params, PipelineConfig config, DeliverSink sink);
  ~PipelinedLogNode() override;

  // --- NodeBehavior --------------------------------------------------------
  void on_start(NodeContext& ctx) override;
  void on_message(NodeContext& ctx, const WireMessage& msg) override;
  void on_timer(NodeContext& ctx, std::uint64_t cookie) override;
  void scramble(NodeContext& ctx, Rng& rng) override;
  void rebind(NodeContext& ctx) override {
    ctx_ = &ctx;
    agree_->rebind(ctx);
  }

  // --- application API -----------------------------------------------------
  /// Queue a command; it is proposed in the next owned slot with capacity.
  /// The optional payload is the command's application body (see
  /// ReplicatedLogNode::submit); it stays bound to the command through slot
  /// assignment, skip-release, and re-proposal.
  void submit(std::uint32_t command, Payload payload = {});

  /// Next slot to be delivered (everything below is settled and flushed).
  [[nodiscard]] std::uint64_t delivered_upto() const { return deliver_next_; }
  /// Every settled slot (committed or skipped). For any slot settled after
  /// the system stabilizes, this record is identical at all correct nodes.
  /// Delivery streams (the sink) additionally re-converge for slots above
  /// the post-fault horizon; slots a scrambled cursor already passed are
  /// pre-coherence damage the agreement layer does not retroactively heal —
  /// production deployments layer state transfer on top (see DESIGN.md).
  [[nodiscard]] const std::map<std::uint64_t, PipelinedEntry>& settled()
      const {
    return settled_;
  }
  /// Lowest unsettled slot (window base).
  [[nodiscard]] std::uint64_t window_base() const { return low_; }
  [[nodiscard]] std::uint32_t depth() const { return depth_; }
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] Duration slot_period() const { return slot_period_; }
  [[nodiscard]] const Params& params() const { return agree_->params(); }

  /// The embedded agreement node (harness probes, white-box tests).
  [[nodiscard]] SsByzNode& agreement() { return *agree_; }

 private:
  static constexpr std::uint64_t kPipeTimerBit = 1ULL << 62;
  enum class PipeTimer : std::uint8_t {
    kProposeDue = 1,
    kWatchdog = 2,
    kHoleGrace = 3,
  };

  struct PendingCommand {
    std::uint32_t command = 0;
    Payload payload;  // application body (pool reference; may be empty)
  };

  void on_decision(const Decision& decision);
  void propose_owned_slots();
  void arm_watchdog();
  void flush_deliveries();
  void settle(std::uint64_t slot, std::optional<std::uint32_t> command,
              NodeId proposer, std::uint64_t payload_crc = 0);
  /// Mark unsettled slots in [from, to) as hole candidates: if still
  /// unsettled after the grace period (≥ ∆agr + relay margin, so any
  /// in-flight agreement has landed at every correct node), they settle as
  /// skipped holes. Settling them immediately would race in-flight
  /// decisions and break per-slot agreement.
  void begin_catchup(std::uint64_t from, std::uint64_t to);
  void sweep_hole_grace();
  [[nodiscard]] Duration hole_grace() const;
  [[nodiscard]] NodeId proposer_for(std::uint64_t slot) const;
  [[nodiscard]] std::uint32_t index_for(std::uint64_t slot) const;
  TimerHandle set_pipe_timer(Duration after, PipeTimer kind,
                             std::uint32_t payload);

  PipelineConfig config_;
  std::uint32_t depth_ = 1;
  Duration slot_period_{};
  Duration watchdog_timeout_{};
  DeliverSink sink_;
  std::unique_ptr<SsByzNode> agree_;
  NodeContext* ctx_ = nullptr;

  std::map<std::uint64_t, PipelinedEntry> settled_;
  std::deque<PendingCommand> pending_;
  std::map<std::uint64_t, PendingCommand> assigned_;  // slot → queued command
  PayloadCrcCache payload_crcs_;  // value → body checksum, from Initiators
  std::set<std::uint64_t> proposed_;                 // sent to agreement
  std::map<std::uint64_t, LocalTime> hole_due_;      // grace deadlines
  std::uint64_t low_ = 0;           // window base (proposals start here)
  std::uint64_t deliver_next_ = 0;  // next slot to hand to the sink
  TimerHandle watchdog_timer_{};    // re-arming cancels the predecessor
};

}  // namespace ssbft
